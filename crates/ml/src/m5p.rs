//! M5P model trees — the paper's chosen prediction algorithm.
//!
//! An M5P model (Quinlan's M5, with the M5′ refinements of Wang & Witten
//! that WEKA implements as `M5P`) is a binary decision tree whose inner
//! nodes test `attribute < value?` and whose leaves hold multiple linear
//! regression models. The paper selects it because system behaviour under
//! software aging is *piecewise linear*: "while a global behavior may be
//! highly nonlinear, it may be composed (or approximated by) a reasonable
//! number of linear patches" (Section 2.2).
//!
//! The implementation follows the published algorithm:
//!
//! 1. **Growth** — recursively split on the attribute/value pair maximising
//!    the *standard deviation reduction*
//!    `SDR = sd(T) − Σᵢ |Tᵢ|/|T| · sd(Tᵢ)`; stop when a node has fewer than
//!    `2 × min_instances` rows or its target deviation falls below 5 % of
//!    the root deviation.
//! 2. **Node models** — every node gets a linear model restricted to the
//!    attributes tested in the subtree below it (a plain mean at grown
//!    leaves), simplified by greedy term elimination under the pessimistic
//!    `(n + ν)/(n − ν)` error adjustment.
//! 3. **Pruning** — bottom-up, a subtree is replaced by its node model when
//!    the model's adjusted error does not exceed the subtree's.
//! 4. **Smoothing** — a leaf prediction `p` is filtered through each
//!    ancestor model `q` as `p ← (n·p + k·q)/(n + k)` with `k = 15`.
//!
//! Training is fully deterministic (ties break towards the lower attribute
//! index and threshold).
//!
//! # Example
//!
//! ```
//! use aging_dataset::Dataset;
//! use aging_ml::{m5p::M5pLearner, Learner, Regressor};
//!
//! // A piecewise-linear target: two regimes, like an aging system before
//! // and after a heap resize.
//! let mut ds = Dataset::new(vec!["mem".into()], "ttf");
//! for i in 0..200 {
//!     let mem = i as f64;
//!     let ttf = if mem < 100.0 { 5000.0 - 10.0 * mem } else { 8000.0 - 40.0 * mem };
//!     ds.push_row(vec![mem], ttf)?;
//! }
//! let model = M5pLearner::default().fit(&ds)?;
//! assert!((model.predict(&[50.0]) - 4500.0).abs() < 100.0);
//! assert!((model.predict(&[150.0]) - 2000.0).abs() < 200.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::linreg::{LinRegLearner, LinearModel};
use crate::{Learner, MlError, Regressor};
use aging_dataset::{stats, Dataset};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration and entry point for training M5P model trees.
#[derive(Debug, Clone, PartialEq)]
pub struct M5pLearner {
    /// Minimum number of instances per leaf (WEKA's `-M`; the paper uses 10).
    pub min_instances: usize,
    /// Whether to prune the grown tree (WEKA's default: yes).
    pub pruning: bool,
    /// Whether to smooth predictions through ancestor models (default: yes).
    pub smoothing: bool,
    /// Growth stops when a node's target deviation is below this fraction of
    /// the root deviation (M5 uses 0.05).
    pub sd_fraction: f64,
    /// The smoothing constant `k` (M5 uses 15).
    pub smoothing_const: f64,
    /// Whether node models greedily drop low-importance terms (M5-style).
    pub eliminate_terms: bool,
}

impl Default for M5pLearner {
    fn default() -> Self {
        M5pLearner {
            min_instances: 4,
            pruning: true,
            smoothing: true,
            sd_fraction: 0.05,
            smoothing_const: 15.0,
            eliminate_terms: true,
        }
    }
}

impl M5pLearner {
    /// The configuration the paper reports: 10 instances per leaf.
    pub fn paper_default() -> Self {
        M5pLearner { min_instances: 10, ..Self::default() }
    }

    /// Builder-style setter for [`M5pLearner::min_instances`].
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn with_min_instances(mut self, m: usize) -> Self {
        assert!(m > 0, "min_instances must be positive");
        self.min_instances = m;
        self
    }

    /// Builder-style setter for [`M5pLearner::pruning`].
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    /// Builder-style setter for [`M5pLearner::smoothing`].
    pub fn with_smoothing(mut self, on: bool) -> Self {
        self.smoothing = on;
        self
    }
}

/// One node of a fitted model tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        model: LinearModel,
        n: usize,
    },
    Split {
        attr: usize,
        threshold: f64,
        model: LinearModel,
        n: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn n(&self) -> usize {
        match self {
            Node::Leaf { n, .. } | Node::Split { n, .. } => *n,
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    fn n_inner(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.n_inner() + right.n_inner(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A fitted M5P model tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct M5pModel {
    root: Node,
    attribute_names: Vec<String>,
    smoothing: bool,
    smoothing_const: f64,
}

impl M5pModel {
    /// Number of leaves (the paper reports e.g. "33 leafs and 30 inner
    /// nodes" for Experiment 4.1).
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }

    /// Number of inner (split) nodes.
    pub fn n_inner_nodes(&self) -> usize {
        self.root.n_inner()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Attribute names the model was trained with.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// For every attribute used in a split: `(name, times used, shallowest
    /// depth at which it appears)`. Sorted by shallowest depth then name.
    ///
    /// This is the paper's root-cause signal (Section 4.4): the attributes
    /// tested near the root of the tree point at the resources involved in
    /// the aging.
    pub fn split_usage(&self) -> Vec<SplitUsage> {
        let mut map: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        fn walk(node: &Node, depth: usize, map: &mut BTreeMap<usize, (usize, usize)>) {
            if let Node::Split { attr, left, right, .. } = node {
                let entry = map.entry(*attr).or_insert((0, depth));
                entry.0 += 1;
                entry.1 = entry.1.min(depth);
                walk(left, depth + 1, map);
                walk(right, depth + 1, map);
            }
        }
        walk(&self.root, 0, &mut map);
        let mut usage: Vec<SplitUsage> = map
            .into_iter()
            .map(|(attr, (count, min_depth))| SplitUsage {
                attribute: self.attribute_names[attr].clone(),
                count,
                min_depth,
            })
            .collect();
        usage.sort_by(|a, b| a.min_depth.cmp(&b.min_depth).then(a.attribute.cmp(&b.attribute)));
        usage
    }

    /// Renders the tree in WEKA's indented style, with the leaf linear
    /// models listed below. `max_depth = None` dumps the whole tree.
    pub fn render(&self, max_depth: Option<usize>) -> String {
        let mut out = String::new();
        let mut leaf_models: Vec<String> = Vec::new();
        self.render_node(&self.root, 0, max_depth, &mut out, &mut leaf_models);
        out.push('\n');
        for lm in leaf_models {
            out.push_str(&lm);
            out.push('\n');
        }
        out
    }

    fn render_node(
        &self,
        node: &Node,
        depth: usize,
        max_depth: Option<usize>,
        out: &mut String,
        leaf_models: &mut Vec<String>,
    ) {
        let indent = "|   ".repeat(depth);
        match node {
            Node::Leaf { model, n } => {
                let id = leaf_models.len() + 1;
                out.push_str(&format!("{indent}LM{id} ({n} instances)\n"));
                leaf_models.push(format!("LM{id}: {}", model.describe()));
            }
            Node::Split { attr, threshold, left, right, n, .. } => {
                if max_depth.is_some_and(|m| depth >= m) {
                    out.push_str(&format!("{indent}... (subtree, {n} instances)\n"));
                    return;
                }
                let name = &self.attribute_names[*attr];
                out.push_str(&format!("{indent}{name} <= {threshold:.4} :\n"));
                self.render_node(left, depth + 1, max_depth, out, leaf_models);
                out.push_str(&format!("{indent}{name} >  {threshold:.4} :\n"));
                self.render_node(right, depth + 1, max_depth, out, leaf_models);
            }
        }
    }

    fn predict_unsmoothed(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { model, .. } => return model.predict(x),
                Node::Split { attr, threshold, left, right, .. } => {
                    node = if x[*attr] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn predict_smoothed(&self, x: &[f64]) -> f64 {
        self.predict_smoothed_with(x, &mut Vec::new())
    }

    /// Smoothed prediction with a caller-provided path buffer, so batched
    /// prediction amortises the allocation across rows. Arithmetic is
    /// identical to the single-shot path.
    fn predict_smoothed_with<'a>(&'a self, x: &[f64], path: &mut Vec<&'a Node>) -> f64 {
        // Collect the path of nodes from root to the chosen leaf.
        path.clear();
        let mut node = &self.root;
        loop {
            path.push(node);
            match node {
                Node::Leaf { .. } => break,
                Node::Split { attr, threshold, left, right, .. } => {
                    node = if x[*attr] <= *threshold { left } else { right };
                }
            }
        }
        // Leaf prediction, then filter up through ancestor models:
        // p <- (n_child * p + k * q_ancestor) / (n_child + k).
        let leaf = path.last().expect("path contains at least the root");
        let mut p = match leaf {
            Node::Leaf { model, .. } => model.predict(x),
            Node::Split { .. } => unreachable!("loop exits only at a leaf"),
        };
        let k = self.smoothing_const;
        for idx in (0..path.len() - 1).rev() {
            let child_n = path[idx + 1].n() as f64;
            let q = match path[idx] {
                Node::Split { model, .. } => model.predict(x),
                Node::Leaf { .. } => unreachable!("inner path nodes are splits"),
            };
            p = (child_n * p + k * q) / (child_n + k);
        }
        p
    }
}

impl Regressor for M5pModel {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.attribute_names.len(),
            "M5P model expects {} attributes, got {}",
            self.attribute_names.len(),
            x.len()
        );
        if self.smoothing {
            self.predict_smoothed(x)
        } else {
            self.predict_unsmoothed(x)
        }
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        // Reuse one smoothing-path buffer for the whole matrix: smoothing
        // walks root→leaf through `path` for every prediction, and the
        // per-call `Vec` allocation dominates single-row latency on the
        // shallow trees the paper produces.
        let mut path: Vec<&Node> = Vec::with_capacity(self.depth() + 1);
        rows.iter()
            .map(|row| {
                assert_eq!(
                    row.len(),
                    self.attribute_names.len(),
                    "M5P model expects {} attributes, got {}",
                    self.attribute_names.len(),
                    row.len()
                );
                if self.smoothing {
                    self.predict_smoothed_with(row, &mut path)
                } else {
                    self.predict_unsmoothed(row)
                }
            })
            .collect()
    }

    fn predict_matrix(&self, matrix: &crate::FeatureMatrix) -> Vec<f64> {
        // Same amortisation as `predict_batch`, over the flat row-major
        // layout the fleet shards refill each epoch.
        assert_eq!(
            matrix.n_cols(),
            self.attribute_names.len(),
            "M5P model expects {} attributes, got {}",
            self.attribute_names.len(),
            matrix.n_cols()
        );
        let mut path: Vec<&Node> = Vec::with_capacity(self.depth() + 1);
        matrix
            .rows()
            .map(|row| {
                if self.smoothing {
                    self.predict_smoothed_with(row, &mut path)
                } else {
                    self.predict_unsmoothed(row)
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "M5P"
    }

    fn describe(&self) -> String {
        self.render(None)
    }
}

/// How often and how shallowly an attribute is used in the tree's splits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitUsage {
    /// Attribute name.
    pub attribute: String,
    /// Number of splits testing this attribute.
    pub count: usize,
    /// Shallowest depth at which the attribute appears (0 = root).
    pub min_depth: usize,
}

// ---------------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------------

/// Tree skeleton produced by the growth phase: row indices per node plus the
/// chosen split. Models are fitted in a second, bottom-up pass.
enum GrownNode {
    Leaf {
        rows: Vec<usize>,
    },
    Split {
        attr: usize,
        threshold: f64,
        rows: Vec<usize>,
        left: Box<GrownNode>,
        right: Box<GrownNode>,
    },
}

impl Learner for M5pLearner {
    type Model = M5pModel;

    fn fit(&self, data: &Dataset) -> Result<M5pModel, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.min_instances == 0 {
            return Err(MlError::InvalidParameter("min_instances must be positive".into()));
        }
        let root_sd = data.target_std().expect("non-empty dataset");
        let all_rows: Vec<usize> = (0..data.len()).collect();
        let grown = self.grow(data, all_rows, root_sd);

        let linreg = LinRegLearner { ridge: 0.0, eliminate_terms: self.eliminate_terms };
        let root = self.finalize(data, &grown, &linreg);
        Ok(M5pModel {
            root,
            attribute_names: data.attribute_names().to_vec(),
            smoothing: self.smoothing,
            smoothing_const: self.smoothing_const,
        })
    }
}

impl M5pLearner {
    fn grow(&self, data: &Dataset, rows: Vec<usize>, root_sd: f64) -> GrownNode {
        let n = rows.len();
        if n < 2 * self.min_instances {
            return GrownNode::Leaf { rows };
        }
        let targets: Vec<f64> = rows.iter().map(|&i| data.target(i)).collect();
        let sd = stats::std_dev(&targets);
        if sd <= self.sd_fraction * root_sd || sd == 0.0 {
            return GrownNode::Leaf { rows };
        }
        match self.best_split(data, &rows, sd) {
            Some((attr, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| data.value(i, attr) <= threshold);
                if left_rows.is_empty() || right_rows.is_empty() {
                    // Degenerate threshold (cannot happen with the
                    // midpoint clamped in `split_threshold`, but a
                    // one-sided partition must never recurse on the full
                    // row set).
                    return GrownNode::Leaf { rows };
                }
                let left = self.grow(data, left_rows, root_sd);
                let right = self.grow(data, right_rows, root_sd);
                GrownNode::Split {
                    attr,
                    threshold,
                    rows,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            None => GrownNode::Leaf { rows },
        }
    }

    /// Finds the `(attribute, threshold)` maximising the standard deviation
    /// reduction, requiring `min_instances` rows on each side. Deterministic:
    /// strict improvement is required to displace an earlier candidate, and
    /// attributes are scanned in index order.
    fn best_split(&self, data: &Dataset, rows: &[usize], parent_sd: f64) -> Option<(usize, f64)> {
        let n = rows.len();
        let mut best: Option<(f64, usize, f64)> = None; // (sdr, attr, threshold)

        for attr in 0..data.n_attributes() {
            // Sort row indices by this attribute's value.
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| data.value(a, attr).total_cmp(&data.value(b, attr)));

            // Prefix sums of targets and squared targets over the sorted order.
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            let total: f64 = order.iter().map(|&i| data.target(i)).sum();
            let total_sq: f64 = order.iter().map(|&i| data.target(i) * data.target(i)).sum();

            for split_pos in 1..n {
                let prev = order[split_pos - 1];
                let t = data.target(prev);
                sum += t;
                sum_sq += t * t;

                if split_pos < self.min_instances || n - split_pos < self.min_instances {
                    continue;
                }
                let v_prev = data.value(prev, attr);
                let v_next = data.value(order[split_pos], attr);
                if v_next <= v_prev {
                    continue; // not a boundary between distinct values
                }

                let nl = split_pos as f64;
                let nr = (n - split_pos) as f64;
                let var_l = (sum_sq / nl - (sum / nl).powi(2)).max(0.0);
                let r_sum = total - sum;
                let r_sum_sq = total_sq - sum_sq;
                let var_r = (r_sum_sq / nr - (r_sum / nr).powi(2)).max(0.0);
                let sdr =
                    parent_sd - (nl / n as f64) * var_l.sqrt() - (nr / n as f64) * var_r.sqrt();

                if sdr > best.map_or(0.0, |(s, _, _)| s) {
                    best = Some((sdr, attr, crate::regtree::split_threshold(v_prev, v_next)));
                }
            }
        }
        best.map(|(_, attr, threshold)| (attr, threshold))
    }

    /// Bottom-up pass: fit node models (restricted to the attributes tested
    /// below each node), then prune when configured.
    fn finalize(&self, data: &Dataset, grown: &GrownNode, linreg: &LinRegLearner) -> Node {
        match grown {
            GrownNode::Leaf { rows } => {
                // Per Quinlan's M5, a node's model may only use attributes
                // tested in the subtree below it; a grown leaf has no
                // subtree, so it gets the constant (mean) model. The
                // piecewise-linear expressive power comes from *pruning*:
                // collapsed subtrees keep the multi-attribute model fitted
                // at their root. Letting grown leaves fit multi-term models
                // on their handful of rows extrapolates catastrophically
                // outside the leaf region (verified on Experiment 4.4).
                let subset = subset(data, rows);
                let mean = subset.target_mean().expect("leaf has rows");
                let mae = subset.targets().iter().map(|t| (t - mean).abs()).sum::<f64>()
                    / subset.len() as f64;
                Node::Leaf {
                    model: LinearModel::constant(
                        mean,
                        data.attribute_names().to_vec(),
                        mae,
                        rows.len(),
                    ),
                    n: rows.len(),
                }
            }
            GrownNode::Split { attr, threshold, rows, left, right } => {
                let left_node = self.finalize(data, left, linreg);
                let right_node = self.finalize(data, right, linreg);

                // Attributes referenced anywhere in this subtree.
                let mut attrs = vec![*attr];
                collect_split_attrs(left, &mut attrs);
                collect_split_attrs(right, &mut attrs);

                let subset = subset(data, rows);
                let model = linreg
                    .fit_on(&subset, &attrs)
                    .expect("split node has at least 2*min_instances rows");

                if self.pruning {
                    let subtree_err = weighted_subtree_error(&left_node, &right_node);
                    if model.adjusted_error() <= subtree_err {
                        return Node::Leaf { model, n: rows.len() };
                    }
                }
                Node::Split {
                    attr: *attr,
                    threshold: *threshold,
                    model,
                    n: rows.len(),
                    left: Box::new(left_node),
                    right: Box::new(right_node),
                }
            }
        }
    }
}

fn collect_split_attrs(node: &GrownNode, out: &mut Vec<usize>) {
    if let GrownNode::Split { attr, left, right, .. } = node {
        out.push(*attr);
        collect_split_attrs(left, out);
        collect_split_attrs(right, out);
    }
}

/// Estimated (pessimistic) error of a finalized node.
fn node_error(node: &Node) -> f64 {
    match node {
        Node::Leaf { model, .. } => model.adjusted_error(),
        Node::Split { left, right, .. } => weighted_subtree_error(left, right),
    }
}

fn weighted_subtree_error(left: &Node, right: &Node) -> f64 {
    let nl = left.n() as f64;
    let nr = right.n() as f64;
    (nl * node_error(left) + nr * node_error(right)) / (nl + nr)
}

fn subset(data: &Dataset, rows: &[usize]) -> Dataset {
    let mut out = Dataset::new(data.attribute_names().to_vec(), data.target_name().to_string());
    for &i in rows {
        out.push_row(data.row(i).values().to_vec(), data.target(i))
            .expect("subset rows come from a valid dataset");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5).
    fn noise(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    fn piecewise(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into(), "z".into()], "y");
        let mut s = 42u64;
        for i in 0..n {
            let x = i as f64 * 200.0 / n as f64;
            let z = noise(&mut s) * 10.0;
            let y = if x < 100.0 { 5000.0 - 10.0 * x } else { 8000.0 - 40.0 * x };
            ds.push_row(vec![x, z], y + noise(&mut s) * 20.0).unwrap();
        }
        ds
    }

    #[test]
    fn fits_piecewise_linear_data() {
        let ds = piecewise(400);
        let m = M5pLearner::default().fit(&ds).unwrap();
        assert!(m.n_leaves() >= 2, "expected at least 2 linear patches");
        assert!((m.predict(&[50.0, 0.0]) - 4500.0).abs() < 150.0);
        assert!((m.predict(&[150.0, 0.0]) - 2000.0).abs() < 250.0);
    }

    #[test]
    fn beats_linear_regression_on_piecewise_data() {
        let ds = piecewise(400);
        let m5p = M5pLearner::default().fit(&ds).unwrap();
        let lr = LinRegLearner::default().fit(&ds).unwrap();
        let mae = |m: &dyn Regressor| {
            ds.iter().map(|r| (m.predict(r.values()) - r.target()).abs()).sum::<f64>()
                / ds.len() as f64
        };
        assert!(
            mae(&m5p) < mae(&lr) / 2.0,
            "M5P MAE {} should be far below LR MAE {}",
            mae(&m5p),
            mae(&lr)
        );
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..50 {
            ds.push_row(vec![i as f64], 7.0).unwrap();
        }
        let m = M5pLearner::default().fit(&ds).unwrap();
        assert_eq!(m.n_leaves(), 1);
        assert_eq!(m.n_inner_nodes(), 0);
        assert_eq!(m.depth(), 0);
        assert_eq!(m.predict(&[3.0]), 7.0);
    }

    #[test]
    fn growth_terminates_when_best_boundary_is_adjacent_floats() {
        // Two adjacent representable doubles: the naive midpoint rounds
        // up to the larger one and the partition goes one-sided — pre-fix
        // this recursed forever (see `regtree::split_threshold`).
        let a = f64::from_bits(1.0f64.to_bits() + 1);
        let b = f64::from_bits(1.0f64.to_bits() + 2);
        assert_eq!((a + b) / 2.0, b, "pair chosen so the naive midpoint rounds up");
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for _ in 0..10 {
            ds.push_row(vec![a], 0.0).unwrap();
            ds.push_row(vec![b], 100.0).unwrap();
        }
        let m =
            M5pLearner { pruning: false, smoothing: false, ..Default::default() }.fit(&ds).unwrap();
        assert_eq!(m.n_leaves(), 2);
        assert!((m.predict(&[a]) - 0.0).abs() < 1e-6);
        assert!((m.predict(&[b]) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_is_error() {
        let ds = Dataset::new(vec!["x".into()], "y");
        assert!(matches!(M5pLearner::default().fit(&ds), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn zero_min_instances_is_rejected() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        ds.push_row(vec![1.0], 1.0).unwrap();
        let learner = M5pLearner { min_instances: 0, ..Default::default() };
        assert!(matches!(learner.fit(&ds), Err(MlError::InvalidParameter(_))));
    }

    #[test]
    fn min_instances_respected() {
        let ds = piecewise(200);
        let m = M5pLearner::default().with_min_instances(50).fit(&ds).unwrap();
        // With 200 rows and >=50 per leaf, at most 4 leaves are possible.
        assert!(m.n_leaves() <= 4);
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_predict() {
        let ds = piecewise(400);
        let rows: Vec<Vec<f64>> = ds.iter().map(|r| r.values().to_vec()).collect();
        for smoothing in [true, false] {
            let m = M5pLearner::default().with_smoothing(smoothing).fit(&ds).unwrap();
            let batch = m.predict_batch(&rows);
            assert_eq!(batch.len(), rows.len());
            for (row, &b) in rows.iter().zip(&batch) {
                let single = m.predict(row);
                assert!(
                    single.to_bits() == b.to_bits(),
                    "smoothing={smoothing}: batch {b} != single {single}"
                );
            }
        }
        let empty: Vec<Vec<f64>> = Vec::new();
        let m = M5pLearner::default().fit(&ds).unwrap();
        assert!(m.predict_batch(&empty).is_empty());
    }

    #[test]
    fn pruning_never_increases_leaves() {
        let ds = piecewise(300);
        let pruned = M5pLearner::default().with_pruning(true).fit(&ds).unwrap();
        let unpruned = M5pLearner::default().with_pruning(false).fit(&ds).unwrap();
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn training_is_deterministic() {
        let ds = piecewise(250);
        let a = M5pLearner::default().fit(&ds).unwrap();
        let b = M5pLearner::default().fit(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn smoothing_changes_predictions_but_stays_close() {
        let ds = piecewise(300);
        let smooth = M5pLearner::default().with_smoothing(true).fit(&ds).unwrap();
        let raw = M5pLearner::default().with_smoothing(false).fit(&ds).unwrap();
        let x = [99.0, 0.0];
        let ps = smooth.predict(&x);
        let pr = raw.predict(&x);
        assert!((ps - pr).abs() < 500.0);
    }

    #[test]
    fn smoothing_reduces_discontinuity_at_split_boundary() {
        let ds = piecewise(400);
        let smooth = M5pLearner::default().with_smoothing(true).fit(&ds).unwrap();
        let raw = M5pLearner::default().with_smoothing(false).fit(&ds).unwrap();
        // Scan across the regime boundary and measure the largest jump
        // between adjacent predictions.
        let max_jump = |m: &M5pModel| {
            let mut worst: f64 = 0.0;
            let mut prev = m.predict(&[95.0, 0.0]);
            let mut x = 95.1;
            while x < 105.0 {
                let p = m.predict(&[x, 0.0]);
                worst = worst.max((p - prev).abs());
                prev = p;
                x += 0.1;
            }
            worst
        };
        assert!(max_jump(&smooth) <= max_jump(&raw) + 1e-9);
    }

    #[test]
    fn split_usage_reports_root_attribute_first() {
        let ds = piecewise(400);
        let m = M5pLearner::default().fit(&ds).unwrap();
        let usage = m.split_usage();
        assert!(!usage.is_empty());
        assert_eq!(usage[0].min_depth, 0);
        assert_eq!(usage[0].attribute, "x", "x drives the target, z is noise");
    }

    #[test]
    fn render_contains_splits_and_models() {
        let ds = piecewise(400);
        let m = M5pLearner::default().fit(&ds).unwrap();
        let dump = m.render(None);
        assert!(dump.contains("x <="));
        assert!(dump.contains("LM1"));
        let shallow = m.render(Some(1));
        assert!(shallow.len() <= dump.len());
    }

    #[test]
    fn predictions_are_finite_on_extrapolation() {
        let ds = piecewise(300);
        let m = M5pLearner::default().fit(&ds).unwrap();
        for x in [-1e6, -1.0, 0.0, 1e6] {
            assert!(m.predict(&[x, 0.0]).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 attributes")]
    fn wrong_arity_panics() {
        let ds = piecewise(100);
        let m = M5pLearner::default().fit(&ds).unwrap();
        let _ = m.predict(&[1.0]);
    }

    #[test]
    fn paper_default_uses_ten_instances() {
        assert_eq!(M5pLearner::paper_default().min_instances, 10);
    }

    #[test]
    fn small_dataset_becomes_single_leaf() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..5 {
            ds.push_row(vec![i as f64], i as f64 * 2.0).unwrap();
        }
        let m = M5pLearner::default().fit(&ds).unwrap();
        assert_eq!(m.n_leaves(), 1);
        assert!(m.predict(&[2.0]).is_finite());
    }
}
