//! Contiguous row-major feature matrices for batched inference.
//!
//! [`crate::Regressor::predict_batch`] takes `&[Vec<f64>]`, which costs one
//! heap allocation per row — measurable overhead when a fleet shard batches
//! 1000+ instances every epoch. [`FeatureMatrix`] stores all rows in one
//! flat buffer that callers clear and refill each epoch, so steady-state
//! batched inference performs no per-row allocations at all; rows are
//! written in place through [`FeatureMatrix::push_row_with`].

/// A row-major matrix of feature rows sharing one contiguous buffer.
///
/// All rows have exactly `n_cols` values. The buffer survives
/// [`FeatureMatrix::clear`], so a reused matrix reaches a steady state
/// where refilling performs no allocations.
///
/// # Example
///
/// ```
/// use aging_ml::FeatureMatrix;
///
/// let mut m = FeatureMatrix::new(3);
/// m.push_row(&[1.0, 2.0, 3.0]);
/// m.push_row_with(|buf| buf.extend([4.0, 5.0, 6.0]));
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
/// assert_eq!(m.rows().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n_cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `n_cols` values.
    ///
    /// # Panics
    ///
    /// Panics if `n_cols == 0`.
    pub fn new(n_cols: usize) -> Self {
        assert!(n_cols > 0, "a feature matrix needs at least one column");
        FeatureMatrix { n_cols, data: Vec::new() }
    }

    /// Creates an empty matrix with capacity preallocated for `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `n_cols == 0`.
    pub fn with_capacity(n_cols: usize, rows: usize) -> Self {
        assert!(n_cols > 0, "a feature matrix needs at least one column");
        FeatureMatrix { n_cols, data: Vec::with_capacity(n_cols * rows) }
    }

    /// Number of values per row.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of rows currently stored.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row by copying it.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.n_cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends one row built in place: `fill` must push exactly
    /// [`FeatureMatrix::n_cols`] values onto the buffer it is handed. This
    /// is the zero-copy path for feature extractors that project directly
    /// into the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `fill` pushes a different number of values (the partial
    /// row is truncated away first, keeping the matrix rectangular).
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<f64>)) {
        let start = self.data.len();
        fill(&mut self.data);
        let pushed = self.data.len() - start;
        if pushed != self.n_cols {
            self.data.truncate(start);
            panic!("row builder pushed {pushed} values, expected {}", self.n_cols);
        }
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterates over the rows in insertion order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// Removes every row, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut m = FeatureMatrix::with_capacity(2, 4);
        for i in 0..4 {
            m.push_row(&[i as f64, (10 * i) as f64]);
        }
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(2), &[2.0, 20.0]);
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[3], &[3.0, 30.0]);
        assert_eq!(m.as_slice().len(), 8);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = FeatureMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        let cap = m.data.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.data.capacity(), cap, "clear must keep the allocation");
    }

    #[test]
    fn push_row_with_builds_in_place() {
        let mut m = FeatureMatrix::new(2);
        m.push_row_with(|buf| {
            buf.push(7.0);
            buf.push(8.0);
        });
        assert_eq!(m.row(0), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut m = FeatureMatrix::new(3);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "pushed 1 values, expected 2")]
    fn short_builder_panics() {
        let mut m = FeatureMatrix::new(2);
        m.push_row_with(|buf| buf.push(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_panics() {
        let _ = FeatureMatrix::new(0);
    }
}
