//! Durable append-only journal for the adaptation subsystem.
//!
//! A process crash must not cost the predictor its learned state: labelled
//! checkpoints, model-generation publishes, threshold re-derivations and
//! discovered partitions are appended here *before* they mutate in-memory
//! state, so a restart can replay the log and resume where the dead
//! process stopped — and an offline reader can re-run the recorded stream
//! under a different policy ("what-if" analysis).
//!
//! # On-disk format
//!
//! A journal is a directory of numbered segment files
//! (`segment-00000000.ajl`, `segment-00000001.ajl`, …). Each segment
//! starts with a 16-byte header:
//!
//! ```text
//! [magic "AJL1": 4][format version: u32 LE][first seq: u64 LE]
//! ```
//!
//! followed by length-prefixed frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][seq: u64 LE][payload: len − 8 bytes]
//! ```
//!
//! `len` covers the seq and payload; the CRC-32 (IEEE) likewise. Sequence
//! numbers are strictly monotone across segments — a reader rejects any
//! out-of-order frame as corruption. Writes are appended with **batched
//! fsync** (every [`JournalOptions::fsync_every`] records, plus on
//! rotation and explicit [`Journal::sync`]); a crash can therefore lose a
//! bounded tail, never tear the middle. On open, the writer scans the last
//! segment and **truncates a torn tail** (a partial frame or one whose CRC
//! fails) before resuming, so appends always start at a clean frame
//! boundary.
//!
//! [`Journal::compact`] rewrites the log past the sliding-buffer horizon:
//! the newest `keep_rows_per_class` checkpoint rows per class survive
//! (whole batches, so replay semantics are preserved), every
//! non-checkpoint record survives, original sequence numbers are kept, and
//! the old segments are deleted.
//!
//! The crate is dependency-free (like `aging-obs`) and knows nothing about
//! the adaptation types: records carry plain strings and floats, and the
//! `aging-adapt` replay layer owns the mapping back to pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 4] = *b"AJL1";
/// On-disk format version written into every segment header.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of the per-segment header (`magic ⊕ version ⊕ first_seq`).
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Upper bound on one frame's `len` field — anything larger is corruption,
/// not a record (guards the reader against allocating garbage lengths).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

const SEGMENT_PREFIX: &str = "segment-";
const SEGMENT_SUFFIX: &str = ".ajl";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One labelled checkpoint row as journaled — the feature vector and label
/// an adaptation pipeline would buffer, stripped of in-memory-only state.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCheckpoint {
    /// Monitoring feature row (order fixed by the deployment's feature set).
    pub features: Vec<f64>,
    /// Retrospective time-to-failure label in seconds.
    pub ttf_secs: f64,
    /// The TTF the serving model predicted for this row, when recorded.
    pub predicted_ttf_secs: Option<f64>,
    /// Generation of the model snapshot that made the prediction.
    pub predicted_generation: Option<u64>,
    /// Monitor-only rows feed drift detection but never the training buffer.
    pub monitor_only: bool,
}

/// One journaled event. `Checkpoints` preserves batch granularity because
/// replay must re-run `AdaptationPipeline::ingest` per *batch* (the retrain
/// gate fires once per batch) to reproduce state bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// One ingested checkpoint batch, journaled before it is buffered.
    Checkpoints {
        /// Service class the batch was routed to.
        class: String,
        /// The batch's rows, in ingest order.
        rows: Vec<JournalCheckpoint>,
    },
    /// A model generation was published for `class`.
    GenerationPublished {
        /// Publishing service class.
        class: String,
        /// The generation counter after the publish.
        generation: u64,
    },
    /// A threshold policy re-derived the operating thresholds for `class`.
    ThresholdsRederived {
        /// Service class whose thresholds moved.
        class: String,
        /// The re-derived drift error threshold (seconds).
        error_threshold_secs: f64,
        /// The re-derived predictive-rejuvenation trigger, when derived.
        rejuvenation_threshold_secs: Option<f64>,
    },
    /// A class was registered with the router (discovery split).
    ClassRegistered {
        /// The newly registered class.
        class: String,
    },
    /// A class was retired into a merge target (discovery merge).
    ClassRetired {
        /// The retired class.
        class: String,
        /// The class that absorbed its buffer.
        into: String,
    },
    /// A discovery round re-assigned the fleet partition.
    PartitionAssigned {
        /// Monotone partition version (discovery round counter).
        version: u64,
        /// `(instance, class)` assignment pairs, in spec order.
        assignment: Vec<(String, String)>,
    },
    /// An instance joined the fleet (initial roster, scripted join, or
    /// autoscale spawn).
    InstanceJoined {
        /// Joining instance name.
        instance: String,
        /// Service class the instance joined under.
        class: String,
        /// Fleet epoch at which the instance became live.
        epoch: u64,
    },
    /// An instance left the fleet — aged out of its simulated horizon, or
    /// was retired early by a churn plan.
    InstanceRetired {
        /// Retiring instance name.
        instance: String,
        /// Fleet epoch at which the instance retired.
        epoch: u64,
        /// Whether a churn plan forced the retire (vs. aging out).
        forced: bool,
    },
}

impl JournalRecord {
    /// The service class the record belongs to, when it has one.
    pub fn class(&self) -> Option<&str> {
        match self {
            JournalRecord::Checkpoints { class, .. }
            | JournalRecord::GenerationPublished { class, .. }
            | JournalRecord::ThresholdsRederived { class, .. }
            | JournalRecord::ClassRegistered { class }
            | JournalRecord::ClassRetired { class, .. }
            | JournalRecord::InstanceJoined { class, .. } => Some(class),
            JournalRecord::PartitionAssigned { .. } | JournalRecord::InstanceRetired { .. } => None,
        }
    }

    /// Checkpoint rows carried by the record (0 for state records).
    pub fn rows(&self) -> u64 {
        match self {
            JournalRecord::Checkpoints { rows, .. } => rows.len() as u64,
            _ => 0,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            JournalRecord::Checkpoints { .. } => 1,
            JournalRecord::GenerationPublished { .. } => 2,
            JournalRecord::ThresholdsRederived { .. } => 3,
            JournalRecord::ClassRegistered { .. } => 4,
            JournalRecord::ClassRetired { .. } => 5,
            JournalRecord::PartitionAssigned { .. } => 6,
            JournalRecord::InstanceJoined { .. } => 7,
            JournalRecord::InstanceRetired { .. } => 8,
        }
    }

    /// Encodes the record payload (everything after the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(self.tag());
        match self {
            JournalRecord::Checkpoints { class, rows } => {
                put_str(&mut out, class);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_u32(&mut out, row.features.len() as u32);
                    for &f in &row.features {
                        put_f64(&mut out, f);
                    }
                    put_f64(&mut out, row.ttf_secs);
                    put_opt_f64(&mut out, row.predicted_ttf_secs);
                    put_opt_u64(&mut out, row.predicted_generation);
                    out.push(row.monitor_only as u8);
                }
            }
            JournalRecord::GenerationPublished { class, generation } => {
                put_str(&mut out, class);
                put_u64(&mut out, *generation);
            }
            JournalRecord::ThresholdsRederived {
                class,
                error_threshold_secs,
                rejuvenation_threshold_secs,
            } => {
                put_str(&mut out, class);
                put_f64(&mut out, *error_threshold_secs);
                put_opt_f64(&mut out, *rejuvenation_threshold_secs);
            }
            JournalRecord::ClassRegistered { class } => put_str(&mut out, class),
            JournalRecord::ClassRetired { class, into } => {
                put_str(&mut out, class);
                put_str(&mut out, into);
            }
            JournalRecord::PartitionAssigned { version, assignment } => {
                put_u64(&mut out, *version);
                put_u32(&mut out, assignment.len() as u32);
                for (instance, class) in assignment {
                    put_str(&mut out, instance);
                    put_str(&mut out, class);
                }
            }
            JournalRecord::InstanceJoined { instance, class, epoch } => {
                put_str(&mut out, instance);
                put_str(&mut out, class);
                put_u64(&mut out, *epoch);
            }
            JournalRecord::InstanceRetired { instance, epoch, forced } => {
                put_str(&mut out, instance);
                put_u64(&mut out, *epoch);
                out.push(*forced as u8);
            }
        }
        out
    }

    /// Decodes a record payload previously produced by [`encode`].
    ///
    /// [`encode`]: JournalRecord::encode
    pub fn decode(payload: &[u8]) -> Result<JournalRecord, DecodeError> {
        let mut c = Cursor { bytes: payload, pos: 0 };
        let tag = c.u8()?;
        let record = match tag {
            1 => {
                let class = c.string()?;
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let dims = c.u32()? as usize;
                    let mut features = Vec::with_capacity(dims.min(4096));
                    for _ in 0..dims {
                        features.push(c.f64()?);
                    }
                    rows.push(JournalCheckpoint {
                        features,
                        ttf_secs: c.f64()?,
                        predicted_ttf_secs: c.opt_f64()?,
                        predicted_generation: c.opt_u64()?,
                        monitor_only: c.u8()? != 0,
                    });
                }
                JournalRecord::Checkpoints { class, rows }
            }
            2 => JournalRecord::GenerationPublished { class: c.string()?, generation: c.u64()? },
            3 => JournalRecord::ThresholdsRederived {
                class: c.string()?,
                error_threshold_secs: c.f64()?,
                rejuvenation_threshold_secs: c.opt_f64()?,
            },
            4 => JournalRecord::ClassRegistered { class: c.string()? },
            5 => JournalRecord::ClassRetired { class: c.string()?, into: c.string()? },
            6 => {
                let version = c.u64()?;
                let n = c.u32()? as usize;
                let mut assignment = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let instance = c.string()?;
                    let class = c.string()?;
                    assignment.push((instance, class));
                }
                JournalRecord::PartitionAssigned { version, assignment }
            }
            7 => JournalRecord::InstanceJoined {
                instance: c.string()?,
                class: c.string()?,
                epoch: c.u64()?,
            },
            8 => JournalRecord::InstanceRetired {
                instance: c.string()?,
                epoch: c.u64()?,
                forced: c.u8()? != 0,
            },
            other => return Err(DecodeError(format!("unknown record tag {other}"))),
        };
        if c.pos != payload.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after record",
                payload.len() - c.pos
            )));
        }
        Ok(record)
    }
}

/// A record payload failed to decode (corruption past the CRC, or a
/// foreign/newer format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal record decode failed: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DecodeError(format!("record truncated at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, DecodeError> {
        Ok(if self.u8()? != 0 { Some(self.f64()?) } else { None })
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        Ok(if self.u8()? != 0 { Some(self.u64()?) } else { None })
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("non-UTF-8 string".into()))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Tunables for the journal writer.
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// `fsync` after this many appended records (1 = every append; the
    /// batching bound on how many records a crash can lose).
    pub fsync_every: u64,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions { fsync_every: 64, segment_max_bytes: 8 * 1024 * 1024 }
    }
}

/// Counters describing a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records surviving into the compacted segment.
    pub kept_records: u64,
    /// Records dropped (checkpoint batches past the horizon).
    pub dropped_records: u64,
    /// Checkpoint rows surviving.
    pub kept_rows: u64,
    /// Checkpoint rows dropped.
    pub dropped_rows: u64,
}

struct WriterState {
    file: File,
    segment: u64,
    bytes: u64,
    next_seq: u64,
    unsynced: u64,
    appended: u64,
    rotations: u64,
    fsyncs: u64,
}

/// A durable, thread-safe journal writer over a segment directory.
///
/// Cloning is by `Arc`: wrap it once and share the handle between the
/// ingest thread (checkpoints), the retrainers (publishes, thresholds) and
/// the fleet leader (partition events) — appends serialise on an internal
/// mutex and every record gets a unique, strictly monotone sequence
/// number.
pub struct Journal {
    dir: PathBuf,
    options: JournalOptions,
    state: Mutex<WriterState>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal").field("dir", &self.dir).finish_non_exhaustive()
    }
}

/// Everything a full read of a journal directory yields.
#[derive(Debug)]
pub struct ReadOutcome {
    /// `(seq, record)` pairs in journal order.
    pub records: Vec<(u64, JournalRecord)>,
    /// Bytes of torn tail truncated (logically) from the last segment.
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `dir` with default
    /// options, truncating any torn tail left by a crash.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Journal> {
        Journal::open_with(dir, JournalOptions::default())
    }

    /// [`open`](Journal::open) with explicit [`JournalOptions`].
    pub fn open_with(dir: impl AsRef<Path>, options: JournalOptions) -> io::Result<Journal> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let scan = scan_dir(&dir, true)?;
        let (segment, next_seq) = match scan.segments.last() {
            None => {
                // Fresh journal: create segment 0.
                let path = segment_path(&dir, 0);
                let mut file =
                    OpenOptions::new().create(true).truncate(true).write(true).open(&path)?;
                write_header(&mut file, 0)?;
                file.sync_data()?;
                (0, 0)
            }
            Some(last) => {
                let next_seq = scan
                    .segments
                    .iter()
                    .flat_map(|s| s.last_seq)
                    .max()
                    .map_or(scan.segments.last().expect("non-empty").first_seq, |s| s + 1);
                if last.valid_len < last.file_len {
                    // Torn tail: cut the file back to the last clean frame.
                    let file = OpenOptions::new().write(true).open(&last.path)?;
                    file.set_len(last.valid_len.max(SEGMENT_HEADER_LEN))?;
                    if last.valid_len < SEGMENT_HEADER_LEN {
                        // Even the header was torn — rewrite it.
                        let mut file = OpenOptions::new().write(true).open(&last.path)?;
                        write_header(&mut file, next_seq)?;
                    }
                    file.sync_data()?;
                }
                (last.index, next_seq)
            }
        };
        let path = segment_path(&dir, segment);
        let mut file = OpenOptions::new().append(true).open(&path)?;
        let bytes = file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            dir,
            options,
            state: Mutex::new(WriterState {
                file,
                segment,
                bytes,
                next_seq,
                unsynced: 0,
                appended: 0,
                rotations: 0,
                fsyncs: 0,
            }),
        })
    }

    /// The journal's segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record; returns its sequence number.
    pub fn append(&self, record: &JournalRecord) -> io::Result<u64> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(16 + payload.len());
        let mut state = self.state.lock().expect("journal writer poisoned");
        let seq = state.next_seq;
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&payload);
        put_u32(&mut frame, body.len() as u32);
        put_u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);

        if state.bytes > SEGMENT_HEADER_LEN
            && state.bytes + frame.len() as u64 > self.options.segment_max_bytes
        {
            self.rotate(&mut state)?;
        }
        state.file.write_all(&frame)?;
        state.bytes += frame.len() as u64;
        state.next_seq += 1;
        state.appended += 1;
        state.unsynced += 1;
        if state.unsynced >= self.options.fsync_every {
            state.file.sync_data()?;
            state.fsyncs += 1;
            state.unsynced = 0;
        }
        Ok(seq)
    }

    fn rotate(&self, state: &mut WriterState) -> io::Result<()> {
        state.file.sync_data()?;
        state.fsyncs += 1;
        state.unsynced = 0;
        let next = state.segment + 1;
        let path = segment_path(&self.dir, next);
        let mut file = OpenOptions::new().create_new(true).write(true).open(&path)?;
        write_header(&mut file, state.next_seq)?;
        file.sync_data()?;
        state.file = OpenOptions::new().append(true).open(&path)?;
        state.segment = next;
        state.bytes = SEGMENT_HEADER_LEN;
        state.rotations += 1;
        Ok(())
    }

    /// Forces everything appended so far to disk.
    pub fn sync(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("journal writer poisoned");
        state.file.sync_data()?;
        state.fsyncs += 1;
        state.unsynced = 0;
        Ok(())
    }

    /// Records appended through this handle since open.
    pub fn appended(&self) -> u64 {
        self.state.lock().expect("journal writer poisoned").appended
    }

    /// The next sequence number an append would take (== records ever
    /// journaled, across restarts, absent compaction gaps at the head).
    pub fn next_seq(&self) -> u64 {
        self.state.lock().expect("journal writer poisoned").next_seq
    }

    /// Segment rotations performed by this handle.
    pub fn rotations(&self) -> u64 {
        self.state.lock().expect("journal writer poisoned").rotations
    }

    /// `fsync` calls issued by this handle (batching diagnostic).
    pub fn fsyncs(&self) -> u64 {
        self.state.lock().expect("journal writer poisoned").fsyncs
    }

    /// Reads every record under `dir`, tolerating a torn tail on the last
    /// segment (its length is reported in
    /// [`ReadOutcome::truncated_bytes`]). Corruption anywhere else — a bad
    /// CRC mid-log, an out-of-order sequence number, an undecodable
    /// payload — is an error.
    pub fn read(dir: impl AsRef<Path>) -> io::Result<ReadOutcome> {
        let scan = scan_dir(dir.as_ref(), false)?;
        let mut records = Vec::new();
        for segment in &scan.segments {
            records.extend(segment.records.iter().cloned());
        }
        Ok(ReadOutcome {
            records,
            truncated_bytes: scan.truncated_bytes,
            segments: scan.segments.len() as u64,
        })
    }

    /// Compacts the journal past the sliding-buffer horizon: keeps the
    /// newest checkpoint batches per class totalling at least
    /// `keep_rows_per_class` rows (whole batches — replay granularity),
    /// keeps every non-checkpoint record, preserves original sequence
    /// numbers, rewrites everything into a single fresh segment and
    /// deletes the old ones.
    pub fn compact(&self, keep_rows_per_class: usize) -> io::Result<CompactionStats> {
        let mut state = self.state.lock().expect("journal writer poisoned");
        state.file.sync_data()?;
        let scan = scan_dir(&self.dir, false)?;
        let all: Vec<(u64, JournalRecord)> =
            scan.segments.iter().flat_map(|s| s.records.iter().cloned()).collect();

        // Walk backwards budgeting checkpoint rows per class.
        let mut budget: HashMap<String, u64> = HashMap::new();
        let mut keep = vec![false; all.len()];
        for (i, (_, record)) in all.iter().enumerate().rev() {
            match record {
                JournalRecord::Checkpoints { class, rows } => {
                    let used = budget.entry(class.clone()).or_insert(0);
                    if *used < keep_rows_per_class as u64 {
                        *used += rows.len() as u64;
                        keep[i] = true;
                    }
                }
                _ => keep[i] = true,
            }
        }

        let mut stats =
            CompactionStats { kept_records: 0, dropped_records: 0, kept_rows: 0, dropped_rows: 0 };
        let next_index = state.segment + 1;
        let path = segment_path(&self.dir, next_index);
        let mut file = OpenOptions::new().create_new(true).write(true).open(&path)?;
        let first_seq =
            all.iter().zip(&keep).find(|(_, &k)| k).map_or(state.next_seq, |((seq, _), _)| *seq);
        write_header(&mut file, first_seq)?;
        let mut bytes = SEGMENT_HEADER_LEN;
        for ((seq, record), &kept) in all.iter().zip(&keep) {
            if !kept {
                stats.dropped_records += 1;
                stats.dropped_rows += record.rows();
                continue;
            }
            stats.kept_records += 1;
            stats.kept_rows += record.rows();
            let payload = record.encode();
            let mut body = Vec::with_capacity(8 + payload.len());
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&payload);
            let mut frame = Vec::with_capacity(8 + body.len());
            put_u32(&mut frame, body.len() as u32);
            put_u32(&mut frame, crc32(&body));
            frame.extend_from_slice(&body);
            file.write_all(&frame)?;
            bytes += frame.len() as u64;
        }
        file.sync_data()?;
        // Point the writer at the compacted segment, then delete the old
        // ones — crash between the two leaves extra (valid) old segments,
        // never a hole.
        let old: Vec<PathBuf> = scan.segments.iter().map(|s| s.path.clone()).collect();
        state.file = OpenOptions::new().append(true).open(&path)?;
        state.segment = next_index;
        state.bytes = bytes;
        state.unsynced = 0;
        for path in old {
            fs::remove_file(&path)?;
        }
        Ok(stats)
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

fn write_header(file: &mut File, first_seq: u64) -> io::Result<()> {
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&first_seq.to_le_bytes());
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)
}

struct ScannedSegment {
    index: u64,
    path: PathBuf,
    file_len: u64,
    valid_len: u64,
    first_seq: u64,
    last_seq: Option<u64>,
    records: Vec<(u64, JournalRecord)>,
}

struct Scan {
    segments: Vec<ScannedSegment>,
    truncated_bytes: u64,
}

fn corrupt(path: &Path, what: impl fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// Scans all segments in `dir`. A torn tail (partial or CRC-failing
/// trailing data) is tolerated only on the *last* segment; `lenient`
/// additionally tolerates a torn header there (a crash between segment
/// creation and header write).
fn scan_dir(dir: &Path, lenient: bool) -> io::Result<Scan> {
    let mut indices: Vec<u64> = Vec::new();
    if dir.is_dir() {
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) =
                name.strip_prefix(SEGMENT_PREFIX).and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
            {
                indices.push(
                    stem.parse::<u64>()
                        .map_err(|_| corrupt(dir, format!("bad segment name {name}")))?,
                );
            }
        }
    }
    indices.sort_unstable();
    let mut segments = Vec::with_capacity(indices.len());
    let mut truncated_bytes = 0u64;
    let mut prev_seq: Option<u64> = None;
    for (pos, &index) in indices.iter().enumerate() {
        let last_segment = pos + 1 == indices.len();
        let path = segment_path(dir, index);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let file_len = bytes.len() as u64;
        if bytes.len() < SEGMENT_HEADER_LEN as usize {
            if last_segment && lenient {
                truncated_bytes += file_len;
                segments.push(ScannedSegment {
                    index,
                    path,
                    file_len,
                    valid_len: 0,
                    first_seq: prev_seq.map_or(0, |s| s + 1),
                    last_seq: None,
                    records: Vec::new(),
                });
                continue;
            }
            return Err(corrupt(&path, "segment shorter than its header"));
        }
        if bytes[..4] != MAGIC {
            return Err(corrupt(&path, "bad magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(corrupt(&path, format!("unsupported format version {version}")));
        }
        let first_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let mut records = Vec::new();
        let mut offset = SEGMENT_HEADER_LEN as usize;
        let mut valid_len = SEGMENT_HEADER_LEN;
        let mut last_seq = None;
        loop {
            if offset == bytes.len() {
                break;
            }
            let frame = read_frame(&bytes[offset..]);
            match frame {
                Ok((seq, record, consumed)) => {
                    if prev_seq.is_some_and(|prev| seq <= prev) {
                        return Err(corrupt(
                            &path,
                            format!(
                                "sequence {seq} at offset {offset} not after {}",
                                prev_seq.expect("checked")
                            ),
                        ));
                    }
                    prev_seq = Some(seq);
                    last_seq = Some(seq);
                    records.push((seq, record));
                    offset += consumed;
                    valid_len = offset as u64;
                }
                Err(e) => {
                    if last_segment {
                        // Torn tail: everything up to here is good.
                        truncated_bytes += file_len - valid_len;
                        break;
                    }
                    return Err(corrupt(&path, format!("at offset {offset}: {e}")));
                }
            }
        }
        segments.push(ScannedSegment {
            index,
            path,
            file_len,
            valid_len,
            first_seq,
            last_seq,
            records,
        });
    }
    Ok(Scan { segments, truncated_bytes })
}

/// Parses one frame from `bytes`; returns `(seq, record, bytes consumed)`.
fn read_frame(bytes: &[u8]) -> Result<(u64, JournalRecord, usize), DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError("partial frame header".into()));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    if !(8..=MAX_FRAME_LEN).contains(&len) {
        return Err(DecodeError(format!("implausible frame length {len}")));
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let end = 8usize + len as usize;
    if bytes.len() < end {
        return Err(DecodeError("frame body truncated".into()));
    }
    let body = &bytes[8..end];
    if crc32(body) != stored_crc {
        return Err(DecodeError("CRC mismatch".into()));
    }
    let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let record = JournalRecord::decode(&body[8..])?;
    Ok((seq, record, end))
}

// ---------------------------------------------------------------------------
// State digests
// ---------------------------------------------------------------------------

/// Streaming FNV-1a 64-bit digest — the workspace's canonical way to
/// compare adaptation state (buffer contents, thresholds, generations)
/// bit-for-bit between a live run and a journal replay without shipping
/// the full state across threads.
#[derive(Debug, Clone, Copy)]
pub struct Digest64 {
    state: u64,
}

impl Default for Digest64 {
    fn default() -> Self {
        Digest64::new()
    }
}

impl Digest64 {
    /// FNV-1a offset basis.
    pub fn new() -> Digest64 {
        Digest64 { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern — bit-identity, not numeric equality.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Folds a string (length-prefixed, so concatenations can't collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

// ---------------------------------------------------------------------------
// Membership fold
// ---------------------------------------------------------------------------

/// Live fleet membership folded from `InstanceJoined`/`InstanceRetired`
/// records in sequence order.
///
/// An elastic fleet journals every membership change, so replaying the log
/// through this fold reconstructs exactly which instances were live when
/// the process died — the membership half of crash recovery (checkpoint
/// replay restores the model-state half). `check_journal` uses the same
/// fold to validate that retires always reference a prior join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MembershipFold {
    /// Instances currently live, in join order: `(instance, class, epoch)`.
    live: Vec<(String, String, u64)>,
    joins: u64,
    retires: u64,
    forced_retires: u64,
    superseded: u64,
}

/// A membership record contradicted the fold state (a retire without a
/// prior join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipError(String);

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "membership fold failed: {}", self.0)
    }
}

impl std::error::Error for MembershipError {}

impl MembershipFold {
    /// An empty fold (no instances live).
    pub fn new() -> MembershipFold {
        MembershipFold::default()
    }

    /// Folds one record. Non-membership records are ignored, so the whole
    /// journal can be streamed through without filtering.
    pub fn apply(&mut self, record: &JournalRecord) -> Result<(), MembershipError> {
        match record {
            JournalRecord::InstanceJoined { instance, class, epoch } => {
                // A re-join of a live instance supersedes the earlier
                // incarnation: the process died before journalling its
                // retirement, and a restarted run re-founded the roster.
                // The new incarnation takes the orphan's place (dropping
                // to the end of the join order, where the new run put it).
                if let Some(idx) = self.live.iter().position(|(name, _, _)| name == instance) {
                    self.live.remove(idx);
                    self.superseded += 1;
                }
                self.live.push((instance.clone(), class.clone(), *epoch));
                self.joins += 1;
            }
            JournalRecord::InstanceRetired { instance, forced, .. } => {
                let idx = self.live.iter().position(|(name, _, _)| name == instance).ok_or_else(
                    || MembershipError(format!("instance {instance:?} retired without a join")),
                )?;
                self.live.remove(idx);
                self.retires += 1;
                self.forced_retires += *forced as u64;
            }
            _ => {}
        }
        Ok(())
    }

    /// Instances currently live, in join order: `(instance, class, epoch)`.
    pub fn live(&self) -> &[(String, String, u64)] {
        &self.live
    }

    /// Total joins folded so far.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Total retires folded so far.
    pub fn retires(&self) -> u64 {
        self.retires
    }

    /// Retires flagged as forced by a churn plan.
    pub fn forced_retires(&self) -> u64 {
        self.forced_retires
    }

    /// Live incarnations superseded by a re-join — crash orphans whose
    /// retirement was never journalled before a restarted run re-founded
    /// them.
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Order-sensitive digest of the live membership — two folds agree iff
    /// the same instances are live with the same classes and join epochs.
    pub fn digest(&self) -> u64 {
        let mut digest = Digest64::new();
        digest.write_u64(self.live.len() as u64);
        for (instance, class, epoch) in &self.live {
            digest.write_str(instance);
            digest.write_str(class);
            digest.write_u64(*epoch);
        }
        digest.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aging-journal-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint_batch(class: &str, n: usize, base: f64) -> JournalRecord {
        JournalRecord::Checkpoints {
            class: class.into(),
            rows: (0..n)
                .map(|i| JournalCheckpoint {
                    features: vec![base + i as f64, -1.5, f64::NAN],
                    ttf_secs: 600.0 + i as f64,
                    predicted_ttf_secs: (i % 2 == 0).then_some(580.0),
                    predicted_generation: (i % 3 == 0).then_some(i as u64),
                    monitor_only: i % 2 == 1,
                })
                .collect(),
        }
    }

    fn all_variants() -> Vec<JournalRecord> {
        vec![
            checkpoint_batch("leak", 3, 10.0),
            JournalRecord::GenerationPublished { class: "leak".into(), generation: 7 },
            JournalRecord::ThresholdsRederived {
                class: "steady".into(),
                error_threshold_secs: 612.5,
                rejuvenation_threshold_secs: Some(420.0),
            },
            JournalRecord::ThresholdsRederived {
                class: "steady".into(),
                error_threshold_secs: 900.0,
                rejuvenation_threshold_secs: None,
            },
            JournalRecord::ClassRegistered { class: "discovered-1".into() },
            JournalRecord::ClassRetired { class: "discovered-1".into(), into: "leak".into() },
            JournalRecord::PartitionAssigned {
                version: 3,
                assignment: vec![("i-0".into(), "leak".into()), ("i-1".into(), "steady".into())],
            },
            JournalRecord::InstanceJoined {
                instance: "i-2".into(),
                class: "leak".into(),
                epoch: 17,
            },
            JournalRecord::InstanceRetired { instance: "i-2".into(), epoch: 41, forced: true },
        ]
    }

    /// NaN features survive the trip by bit pattern, so `PartialEq` on the
    /// decoded record would fail — compare re-encodings instead.
    fn assert_roundtrip(record: &JournalRecord) {
        let decoded = JournalRecord::decode(&record.encode()).expect("decodes");
        assert_eq!(decoded.encode(), record.encode(), "{record:?}");
    }

    #[test]
    fn every_record_variant_roundtrips() {
        for record in all_variants() {
            assert_roundtrip(&record);
        }
    }

    #[test]
    fn decode_rejects_garbage_and_trailing_bytes() {
        assert!(JournalRecord::decode(&[]).is_err());
        assert!(JournalRecord::decode(&[99]).is_err());
        let mut bytes = JournalRecord::ClassRegistered { class: "x".into() }.encode();
        bytes.push(0);
        assert!(JournalRecord::decode(&bytes).unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn membership_fold_tracks_live_instances_and_rejects_contradictions() {
        let join = |name: &str, epoch| JournalRecord::InstanceJoined {
            instance: name.into(),
            class: "leak".into(),
            epoch,
        };
        let retire = |name: &str, epoch, forced| JournalRecord::InstanceRetired {
            instance: name.into(),
            epoch,
            forced,
        };
        let mut fold = MembershipFold::new();
        for record in [&join("i-0", 0), &join("i-1", 0), &checkpoint_batch("leak", 1, 0.0)] {
            fold.apply(record).unwrap();
        }
        fold.apply(&retire("i-0", 9, false)).unwrap();
        fold.apply(&join("i-2", 12)).unwrap();
        assert_eq!(
            fold.live(),
            &[("i-1".into(), "leak".into(), 0), ("i-2".into(), "leak".into(), 12)]
        );
        assert_eq!((fold.joins(), fold.retires(), fold.forced_retires()), (3, 1, 0));
        fold.apply(&retire("i-2", 14, true)).unwrap();
        assert_eq!(fold.forced_retires(), 1);
        // A re-join of a live instance supersedes the crash orphan — the
        // incarnation restarted runs journal when the process died before
        // retiring it — rather than contradicting the fold.
        fold.apply(&join("i-1", 20)).unwrap();
        assert_eq!(fold.superseded(), 1);
        assert_eq!(fold.live(), &[("i-1".into(), "leak".into(), 20)]);
        // A retire without any prior join is still a contradiction.
        assert!(fold.apply(&retire("i-7", 20, false)).is_err());
        // Digest is order-sensitive over the live set.
        let mut a = MembershipFold::new();
        let mut b = MembershipFold::new();
        a.apply(&join("x", 1)).unwrap();
        a.apply(&join("y", 1)).unwrap();
        b.apply(&join("y", 1)).unwrap();
        b.apply(&join("x", 1)).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_read_roundtrips_across_rotation() {
        let dir = tmp_dir("rotate");
        let options = JournalOptions { fsync_every: 2, segment_max_bytes: 256 };
        let journal = Journal::open_with(&dir, options).unwrap();
        let records = all_variants();
        for (i, record) in records.iter().enumerate() {
            assert_eq!(journal.append(record).unwrap(), i as u64);
        }
        journal.sync().unwrap();
        assert!(journal.rotations() > 0, "256-byte segments must rotate");
        assert!(journal.fsyncs() >= records.len() as u64 / 2);
        let outcome = Journal::read(&dir).unwrap();
        assert_eq!(outcome.truncated_bytes, 0);
        assert!(outcome.segments > 1);
        assert_eq!(outcome.records.len(), records.len());
        for (i, ((seq, got), want)) in outcome.records.iter().zip(&records).enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(got.encode(), want.encode());
        }
    }

    #[test]
    fn torn_tail_is_tolerated_on_read_and_truncated_on_open() {
        let dir = tmp_dir("torn");
        let journal = Journal::open(&dir).unwrap();
        for record in all_variants() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        // Simulate a crash mid-frame: append garbage to the last segment.
        let last = segment_path(&dir, 0);
        let mut file = OpenOptions::new().append(true).open(&last).unwrap();
        file.write_all(&[0x17; 11]).unwrap();
        drop(file);
        let outcome = Journal::read(&dir).unwrap();
        assert_eq!(outcome.records.len(), all_variants().len());
        assert_eq!(outcome.truncated_bytes, 11);
        // Re-open truncates the tear and appends cleanly after it.
        let reopened = Journal::open(&dir).unwrap();
        let seq = reopened
            .append(&JournalRecord::ClassRegistered { class: "post-crash".into() })
            .unwrap();
        assert_eq!(seq, all_variants().len() as u64);
        reopened.sync().unwrap();
        let outcome = Journal::read(&dir).unwrap();
        assert_eq!(outcome.truncated_bytes, 0);
        assert_eq!(outcome.records.len(), all_variants().len() + 1);
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_truncation() {
        let dir = tmp_dir("midlog");
        let options = JournalOptions { fsync_every: 1, segment_max_bytes: 128 };
        let journal = Journal::open_with(&dir, options).unwrap();
        for record in all_variants() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        assert!(Journal::read(&dir).unwrap().segments > 1);
        // Flip one payload byte in the FIRST segment (not the last).
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let err = Journal::read(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sequence_numbers_survive_restart() {
        let dir = tmp_dir("restart");
        {
            let journal = Journal::open(&dir).unwrap();
            journal.append(&JournalRecord::ClassRegistered { class: "a".into() }).unwrap();
            journal.append(&JournalRecord::ClassRegistered { class: "b".into() }).unwrap();
            journal.sync().unwrap();
        }
        let journal = Journal::open(&dir).unwrap();
        assert_eq!(journal.next_seq(), 2);
        assert_eq!(
            journal.append(&JournalRecord::ClassRegistered { class: "c".into() }).unwrap(),
            2
        );
    }

    #[test]
    fn compaction_keeps_the_per_class_tail_and_all_state_records() {
        let dir = tmp_dir("compact");
        let journal = Journal::open(&dir).unwrap();
        for i in 0..10 {
            journal.append(&checkpoint_batch("leak", 4, i as f64 * 100.0)).unwrap();
            journal.append(&checkpoint_batch("steady", 2, i as f64 * 100.0)).unwrap();
        }
        journal
            .append(&JournalRecord::GenerationPublished { class: "leak".into(), generation: 1 })
            .unwrap();
        let stats = journal.compact(8).unwrap();
        // leak: 4-row batches, budget 8 → last 2 batches. steady: 2-row
        // batches → last 4 batches. Publish always kept.
        assert_eq!(stats.kept_rows, 2 * 4 + 4 * 2);
        assert_eq!(stats.dropped_rows, 8 * 4 + 6 * 2);
        assert_eq!(stats.kept_records, 2 + 4 + 1);
        let outcome = Journal::read(&dir).unwrap();
        assert_eq!(outcome.segments, 1, "compaction rewrites into one segment");
        assert_eq!(outcome.records.len() as u64, stats.kept_records);
        // Seqs stay strictly monotone and original.
        let seqs: Vec<u64> = outcome.records.iter().map(|(s, _)| *s).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seqs.last().unwrap(), 20);
        // Appending after compaction continues the sequence.
        let seq = journal.append(&checkpoint_batch("leak", 1, 0.0)).unwrap();
        assert_eq!(seq, 21);
        journal.sync().unwrap();
        assert_eq!(Journal::read(&dir).unwrap().records.len() as u64, stats.kept_records + 1);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let digest = |parts: &[&str]| {
            let mut d = Digest64::new();
            for p in parts {
                d.write_str(p);
            }
            d.finish()
        };
        assert_eq!(digest(&["a", "b"]), digest(&["a", "b"]));
        assert_ne!(digest(&["a", "b"]), digest(&["b", "a"]));
        assert_ne!(digest(&["ab", ""]), digest(&["a", "b"]), "length prefix prevents collisions");
        let mut nan = Digest64::new();
        nan.write_f64(f64::NAN);
        let mut neg_nan = Digest64::new();
        neg_nan.write_f64(-f64::NAN);
        assert_ne!(nan.finish(), neg_nan.finish(), "digest is bit-level");
    }
}
