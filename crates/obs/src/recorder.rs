//! Instrument handles, the [`Recorder`] trait and the [`SpanTimer`] RAII
//! guard.
//!
//! Instrumented crates hold handles, not instruments: a handle is an
//! `Option<Arc<...>>`, so when telemetry is off the entire cost of an
//! instrumented call site is one branch on a `None` — no clock reads, no
//! atomics, no allocation. The [`Recorder`] trait's default methods all
//! return disabled handles, which makes [`NoopRecorder`] a one-line impl
//! and lets any component accept `&dyn Recorder` without caring whether a
//! live registry sits behind it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::instruments::{Counter, Gauge, Histogram};
use crate::registry::Unit;

/// Handle to a [`Counter`], possibly disabled.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// A handle that drops every update.
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    pub(crate) fn live(counter: Arc<Counter>) -> Self {
        Self(Some(counter))
    }

    /// Whether updates reach a live instrument.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Current count, or `None` when disabled.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        self.0.as_ref().map(|c| c.value())
    }
}

/// Handle to a [`Gauge`], possibly disabled.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A handle that drops every update.
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    pub(crate) fn live(gauge: Arc<Gauge>) -> Self {
        Self(Some(gauge))
    }

    /// Whether updates reach a live instrument.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Overwrites the gauge (non-finite values are dropped).
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Current value, or `None` when disabled or never set.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.0.as_ref().and_then(|g| g.get())
    }
}

/// Handle to a [`Histogram`], possibly disabled.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that drops every update.
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    pub(crate) fn live(hist: Arc<Histogram>) -> Self {
        Self(Some(hist))
    }

    /// Whether updates reach a live instrument.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one raw observation (nanoseconds for duration histograms).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts an RAII phase timer; recording happens when the guard drops.
    ///
    /// When the handle is disabled the guard is inert and **no clock is
    /// read** — this is what keeps `Instant::now()` off uninstrumented
    /// paths.
    #[inline]
    pub fn span(&self) -> SpanTimer {
        SpanTimer { inner: self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())) }
    }

    /// Number of recorded observations, or `None` when disabled.
    #[must_use]
    pub fn count(&self) -> Option<u64> {
        self.0.as_ref().map(|h| h.count())
    }
}

/// RAII guard recording elapsed wall time into a histogram on drop.
///
/// Obtained from [`HistogramHandle::span`]. Holds no clock when the parent
/// handle is disabled.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct SpanTimer {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl SpanTimer {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Source of instrument handles.
///
/// Every method has a default returning a disabled handle, so a recorder
/// that records nothing is `impl Recorder for NoopRecorder {}` — and
/// instrumented code can resolve handles through `&dyn Recorder` without
/// knowing whether telemetry is on.
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Resolves an unlabelled counter.
    fn counter(&self, name: &str, help: &str) -> CounterHandle {
        let _ = (name, help);
        CounterHandle::disabled()
    }

    /// Resolves a counter series inside a labelled family.
    fn counter_with(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> CounterHandle {
        let _ = (name, help, label_key, label_value);
        CounterHandle::disabled()
    }

    /// Resolves an unlabelled gauge.
    fn gauge(&self, name: &str, help: &str) -> GaugeHandle {
        let _ = (name, help);
        GaugeHandle::disabled()
    }

    /// Resolves a gauge series inside a labelled family.
    fn gauge_with(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> GaugeHandle {
        let _ = (name, help, label_key, label_value);
        GaugeHandle::disabled()
    }

    /// Resolves an unlabelled histogram.
    fn histogram(&self, name: &str, help: &str, unit: Unit) -> HistogramHandle {
        let _ = (name, help, unit);
        HistogramHandle::disabled()
    }

    /// Resolves a histogram series inside a labelled family.
    fn histogram_with(
        &self,
        name: &str,
        help: &str,
        unit: Unit,
        label_key: &str,
        label_value: &str,
    ) -> HistogramHandle {
        let _ = (name, help, unit, label_key, label_value);
        HistogramHandle::disabled()
    }
}

/// Recorder that drops everything; the telemetry-off fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = CounterHandle::disabled();
        c.inc();
        c.add(10);
        assert!(!c.enabled());
        assert_eq!(c.value(), None);

        let g = GaugeHandle::disabled();
        g.set(1.0);
        assert_eq!(g.value(), None);

        let h = HistogramHandle::disabled();
        h.record(7);
        h.record_duration(Duration::from_millis(1));
        h.span().finish();
        assert_eq!(h.count(), None);
    }

    #[test]
    fn noop_recorder_hands_out_disabled_handles() {
        let r = NoopRecorder;
        assert!(!r.counter("a_total", "help").enabled());
        assert!(!r.gauge_with("b", "help", "class", "0").enabled());
        assert!(!r.histogram("c_seconds", "help", Unit::Seconds).enabled());
    }

    #[test]
    fn span_records_on_drop() {
        let hist = Arc::new(Histogram::new());
        let handle = HistogramHandle::live(Arc::clone(&hist));
        {
            let _span = handle.span();
        }
        handle.span().finish();
        assert_eq!(hist.count(), 2);
    }
}
