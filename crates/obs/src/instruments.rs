//! Lock-free instruments: [`Counter`], [`Gauge`] and the log2-bucket
//! [`Histogram`].
//!
//! All three are plain atomics, safe to hammer from every shard thread
//! without coordination. Histograms use a fixed power-of-two bucket layout
//! so recording is one `leading_zeros` plus two relaxed increments — no
//! allocation, no locks, no floating point on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` covers raw values whose upper
/// bound is `2^i - 1`; the last bucket is unbounded (`+Inf` at export).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating point value (queue depth, occupancy, score).
///
/// Stored as `f64` bits in an `AtomicU64`; NaN bits mean "never set", so a
/// gauge that was created but never written is skipped by the exporters
/// instead of reporting a misleading zero.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self { bits: AtomicU64::new(f64::NAN.to_bits()) }
    }
}

impl Gauge {
    /// Creates an unset gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the gauge. Non-finite values are ignored so the exported
    /// snapshot never contains NaN or infinities.
    #[inline]
    pub fn set(&self, v: f64) {
        if v.is_finite() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value, or `None` if the gauge was never set.
    #[must_use]
    pub fn get(&self) -> Option<f64> {
        let v = f64::from_bits(self.bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }
}

/// Fixed log2-bucket histogram over raw `u64` observations.
///
/// Bucket `i` counts observations `v` with `v <= 2^i - 1` (and above the
/// previous bound): bucket 0 holds only `v == 0`, bucket 1 only `v == 1`,
/// bucket 2 the range `2..=3`, and so on; the final bucket is unbounded.
/// Durations are recorded in nanoseconds and scaled to seconds at export
/// time, so the hot path never touches floating point.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket covering `v`: `0` for `v == 0`, otherwise one
    /// past the position of the highest set bit, clamped to the last bucket.
    #[inline]
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i`, or `None` for the unbounded
    /// final bucket.
    #[must_use]
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some((1u64 << i) - 1)
        } else {
            None
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all raw observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), in bucket order.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_starts_unset_and_rejects_non_finite() {
        let g = Gauge::new();
        assert_eq!(g.get(), None);
        g.set(f64::NAN);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), None, "non-finite writes are dropped");
        g.set(2.5);
        assert_eq!(g.get(), Some(2.5));
        g.set(-1.0);
        assert_eq!(g.get(), Some(-1.0));
    }

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value lands in the first bucket whose bound covers it.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2] {
            let i = Histogram::bucket_index(v);
            if let Some(bound) = Histogram::bucket_bound(i) {
                assert!(v <= bound, "v={v} bucket={i} bound={bound}");
            }
            if i > 0 {
                let below = Histogram::bucket_bound(i - 1).expect("not last");
                assert!(v > below, "v={v} should exceed previous bound {below}");
            }
        }
    }

    #[test]
    fn histogram_records() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[Histogram::bucket_index(1000)], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }
}
