//! Exporters: Prometheus text-format rendering and the serde-JSON
//! [`TelemetrySnapshot`] embedded in fleet reports.
//!
//! Both exporters walk the registry once under its mutex; neither is ever
//! on a hot path. Output is deterministic — families and series are held
//! in `BTreeMap`s and duration scaling is done with exact decimal-shift
//! string formatting — which is what makes golden-file testing of
//! [`Registry::render`] possible.

use serde::{Deserialize, Serialize};

use crate::instruments::Histogram;
use crate::registry::{Instrument, MetricFamily, MetricKind, Registry, Unit};

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/// A single label attached to a sample (this registry supports at most one
/// label per family, keyed by class or shard id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelSample {
    /// Label key, e.g. `class` or `shard`.
    pub key: String,
    /// Label value, e.g. a class name or shard index.
    pub value: String,
}

/// Point-in-time value of one counter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric family name.
    pub name: String,
    /// Series label, absent for unlabelled metrics.
    pub label: Option<LabelSample>,
    /// Cumulative count.
    pub value: u64,
}

/// Point-in-time value of one gauge series. Unset gauges are omitted from
/// snapshots entirely, so `value` is always finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric family name.
    pub name: String,
    /// Series label, absent for unlabelled metrics.
    pub label: Option<LabelSample>,
    /// Last value written.
    pub value: f64,
}

/// One cumulative histogram bucket; `le` is always finite (observations in
/// the unbounded final bucket show up in [`HistogramSample::count`] only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSample {
    /// Inclusive upper bound, in the histogram's export unit.
    pub le: f64,
    /// Observations at or below `le` (cumulative).
    pub count: u64,
}

/// Point-in-time state of one histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Series label, absent for unlabelled metrics.
    pub label: Option<LabelSample>,
    /// Export unit name: `"seconds"` or `"count"`.
    pub unit: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, scaled to the export unit.
    pub sum: f64,
    /// Cumulative buckets, trimmed at the highest non-empty bucket.
    pub buckets: Vec<BucketSample>,
}

impl HistogramSample {
    /// Mean observation in the export unit, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Upper bound of the highest non-empty bucket — a deterministic
    /// proxy for the maximum observation (within one power of two).
    #[must_use]
    pub fn max_bound(&self) -> Option<f64> {
        let mut prev = 0;
        let mut best = None;
        for b in &self.buckets {
            if b.count > prev {
                best = Some(b.le);
            }
            prev = b.count;
        }
        best
    }

    /// Upper-bound estimate of quantile `q` (in `0.0..=1.0`) from the
    /// cumulative log2 buckets: the bound of the first bucket whose
    /// cumulative count reaches `ceil(q · count)`. Exact to within one
    /// power of two, like every bucketed quantile. `None` when the series
    /// is empty, `q` is not a proper fraction, or the quantile falls in
    /// the unbounded final bucket (no finite bound exists).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        self.buckets.iter().find(|b| b.count >= target).map(|b| b.le)
    }

    /// Median upper bound — [`HistogramSample::quantile`] at 0.5.
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile upper bound — [`HistogramSample::quantile`] at
    /// 0.99.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merges histogram series of one family into a single distribution
    /// (per-bucket counts summed by bound, sums and counts added) — the
    /// fleet-wide view of a per-shard family. Returns `None` when `series`
    /// is empty or mixes families/units.
    #[must_use]
    pub fn merged(series: &[&HistogramSample]) -> Option<HistogramSample> {
        let first = series.first()?;
        if series.iter().any(|h| h.name != first.name || h.unit != first.unit) {
            return None;
        }
        // Per-bucket (non-cumulative) counts keyed by the bit pattern of
        // the bound: every series of a family shares the same log2 bounds,
        // so bitwise equality is exact.
        let mut by_bound: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for h in series {
            count += h.count;
            sum += h.sum;
            let mut prev = 0u64;
            for b in &h.buckets {
                *by_bound.entry(b.le.to_bits()).or_insert(0) += b.count - prev;
                prev = b.count;
            }
        }
        let mut cumulative = 0u64;
        let buckets = by_bound
            .into_iter()
            .map(|(bits, c)| {
                cumulative += c;
                BucketSample { le: f64::from_bits(bits), count: cumulative }
            })
            .collect();
        Some(HistogramSample {
            name: first.name.clone(),
            label: None,
            unit: first.unit.clone(),
            count,
            sum,
            buckets,
        })
    }

    /// The series' label value, if labelled.
    #[must_use]
    pub fn label_value(&self) -> Option<&str> {
        self.label.as_ref().map(|l| l.value.as_str())
    }
}

fn label_matches(label: &Option<LabelSample>, want: Option<&str>) -> bool {
    label.as_ref().map(|l| l.value.as_str()) == want
}

/// Serialisable snapshot of every instrument in a [`Registry`], embedded
/// as `FleetReport.telemetry` and written by the examples' `--metrics`
/// flag.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// All counter series, including zero-valued ones.
    pub counters: Vec<CounterSample>,
    /// All gauge series that were set at least once.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, including empty ones.
    pub histograms: Vec<HistogramSample>,
}

impl TelemetrySnapshot {
    /// Whether the snapshot holds no series at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of one counter series (`label` `None` selects the unlabelled
    /// series).
    #[must_use]
    pub fn counter(&self, name: &str, label: Option<&str>) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && label_matches(&c.label, label))
            .map(|c| c.value)
    }

    /// Sum of a counter family across all its series.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// All series of one counter family.
    #[must_use]
    pub fn counter_series(&self, name: &str) -> Vec<&CounterSample> {
        self.counters.iter().filter(|c| c.name == name).collect()
    }

    /// Value of one gauge series, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str, label: Option<&str>) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && label_matches(&g.label, label))
            .map(|g| g.value)
    }

    /// One histogram series.
    #[must_use]
    pub fn histogram(&self, name: &str, label: Option<&str>) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name && label_matches(&h.label, label))
    }

    /// All series of one histogram family.
    #[must_use]
    pub fn histogram_series(&self, name: &str) -> Vec<&HistogramSample> {
        self.histograms.iter().filter(|h| h.name == name).collect()
    }

    /// All series of one histogram family merged into a single
    /// distribution — e.g. the fleet-wide barrier-wait histogram across
    /// per-shard series, ready for [`HistogramSample::p99`].
    #[must_use]
    pub fn histogram_merged(&self, name: &str) -> Option<HistogramSample> {
        HistogramSample::merged(&self.histogram_series(name))
    }
}

// ---------------------------------------------------------------------------
// Deterministic value formatting
// ---------------------------------------------------------------------------

/// Formats a raw instrument value in the family's export unit using exact
/// decimal-shift arithmetic (nanoseconds → seconds is a 10^-9 shift), so
/// rendering never depends on float rounding.
fn scaled(raw: u64, unit: Unit) -> String {
    match unit {
        Unit::Count => raw.to_string(),
        Unit::Seconds => {
            let secs = raw / 1_000_000_000;
            let frac = raw % 1_000_000_000;
            if frac == 0 {
                secs.to_string()
            } else {
                let mut frac_s = format!("{frac:09}");
                while frac_s.ends_with('0') {
                    frac_s.pop();
                }
                format!("{secs}.{frac_s}")
            }
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn label_block(key: Option<&str>, value: Option<&str>, le: Option<&str>) -> String {
    let mut parts = Vec::new();
    if let (Some(k), Some(v)) = (key, value) {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

// ---------------------------------------------------------------------------
// Registry exporters
// ---------------------------------------------------------------------------

fn histogram_lines(
    name: &str,
    key: Option<&str>,
    value: Option<&str>,
    hist: &Histogram,
    unit: Unit,
    lines: &mut Vec<String>,
) {
    let counts = hist.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last {
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            let Some(bound) = Histogram::bucket_bound(i) else {
                break; // final bucket has no finite bound; covered by +Inf
            };
            cumulative += c;
            lines.push(format!(
                "{name}_bucket{} {cumulative}",
                label_block(key, value, Some(&scaled(bound, unit)))
            ));
        }
    }
    lines.push(format!("{name}_bucket{} {}", label_block(key, value, Some("+Inf")), hist.count()));
    lines.push(format!("{name}_sum{} {}", label_block(key, value, None), scaled(hist.sum(), unit)));
    lines.push(format!("{name}_count{} {}", label_block(key, value, None), hist.count()));
}

fn family_lines(name: &str, fam: &MetricFamily) -> Vec<String> {
    let key = fam.label_key.as_deref();
    let mut lines = Vec::new();
    for (label_value, instrument) in &fam.series {
        let value = label_value.as_deref();
        match instrument {
            Instrument::Counter(c) => {
                lines.push(format!("{name}{} {}", label_block(key, value, None), c.value()))
            }
            Instrument::Gauge(g) => {
                if let Some(v) = g.get() {
                    lines.push(format!("{name}{} {}", label_block(key, value, None), fmt_f64(v)));
                }
            }
            Instrument::Histogram(h) => {
                let MetricKind::Histogram(unit) = fam.kind else {
                    continue;
                };
                histogram_lines(name, key, value, h, unit, &mut lines);
            }
        }
    }
    lines
}

impl Registry {
    /// Renders every family in Prometheus text exposition format.
    ///
    /// Families and series appear in lexicographic order; gauge families
    /// with no set series are omitted, so the output is a deterministic
    /// function of what was recorded.
    #[must_use]
    pub fn render(&self) -> String {
        self.with_families(|families| {
            let mut out = String::new();
            for (name, fam) in families {
                let lines = family_lines(name, fam);
                if lines.is_empty() {
                    continue;
                }
                let kind = match fam.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram(_) => "histogram",
                };
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&fam.help);
                out.push_str("\n# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                for line in lines {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            out
        })
    }

    /// Captures every series into a serialisable [`TelemetrySnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.with_families(|families| {
            let mut snap = TelemetrySnapshot::default();
            for (name, fam) in families {
                let key = fam.label_key.as_deref();
                for (label_value, instrument) in &fam.series {
                    let label = match (key, label_value) {
                        (Some(k), Some(v)) => {
                            Some(LabelSample { key: k.to_string(), value: v.clone() })
                        }
                        _ => None,
                    };
                    match instrument {
                        Instrument::Counter(c) => snap.counters.push(CounterSample {
                            name: name.clone(),
                            label,
                            value: c.value(),
                        }),
                        Instrument::Gauge(g) => {
                            if let Some(v) = g.get() {
                                snap.gauges.push(GaugeSample {
                                    name: name.clone(),
                                    label,
                                    value: v,
                                });
                            }
                        }
                        Instrument::Histogram(h) => {
                            let MetricKind::Histogram(unit) = fam.kind else {
                                continue;
                            };
                            let counts = h.bucket_counts();
                            let last = counts.iter().rposition(|&c| c > 0);
                            let mut buckets = Vec::new();
                            let mut cumulative = 0u64;
                            if let Some(last) = last {
                                for (i, &c) in counts.iter().enumerate().take(last + 1) {
                                    let Some(bound) = Histogram::bucket_bound(i) else {
                                        break;
                                    };
                                    cumulative += c;
                                    buckets.push(BucketSample {
                                        le: bound as f64 * unit.scale(),
                                        count: cumulative,
                                    });
                                }
                            }
                            snap.histograms.push(HistogramSample {
                                name: name.clone(),
                                label,
                                unit: unit.name().to_string(),
                                count: h.count(),
                                sum: h.sum() as f64 * unit.scale(),
                                buckets,
                            });
                        }
                    }
                }
            }
            snap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("fleet_epochs_total", "Epochs completed").add(3);
        r.counter_with("adapt_bus_shed_checkpoints_total", "Shed by class", "class", "web").add(5);
        r.gauge("adapt_bus_depth_batches", "Queued batches").set(2.0);
        let _unset = r.gauge("discovery_silhouette", "Never set here");
        let h = r.histogram_with(
            "fleet_barrier_wait_seconds",
            "Barrier wait",
            Unit::Seconds,
            "shard",
            "0",
        );
        h.record(100);
        h.record(1000);
        r
    }

    #[test]
    fn scaled_is_exact_decimal_shift() {
        assert_eq!(scaled(0, Unit::Seconds), "0");
        assert_eq!(scaled(1, Unit::Seconds), "0.000000001");
        assert_eq!(scaled(1023, Unit::Seconds), "0.000001023");
        assert_eq!(scaled(1_500_000_000, Unit::Seconds), "1.5");
        assert_eq!(scaled(2_000_000_000, Unit::Seconds), "2");
        assert_eq!(scaled(42, Unit::Count), "42");
    }

    #[test]
    fn snapshot_captures_all_series() {
        let snap = populated().snapshot();
        assert_eq!(snap.counter("fleet_epochs_total", None), Some(3));
        assert_eq!(snap.counter("adapt_bus_shed_checkpoints_total", Some("web")), Some(5));
        assert_eq!(snap.counter_total("adapt_bus_shed_checkpoints_total"), 5);
        assert_eq!(snap.gauge("adapt_bus_depth_batches", None), Some(2.0));
        assert_eq!(snap.gauge("discovery_silhouette", None), None, "unset gauges omitted");
        let hist =
            snap.histogram("fleet_barrier_wait_seconds", Some("0")).expect("histogram present");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.unit, "seconds");
        assert!((hist.sum - 1.1e-6).abs() < 1e-12);
        let mean = hist.mean().expect("non-empty");
        assert!((mean - 5.5e-7).abs() < 1e-12);
        let max = hist.max_bound().expect("non-empty");
        assert!((max - 1.023e-6).abs() < 1e-12, "1000 ns lands in le=1023 ns");
        // Buckets cumulative and capped by total count.
        let mut prev = 0;
        for b in &hist.buckets {
            assert!(b.count >= prev);
            assert!(b.le.is_finite());
            prev = b.count;
        }
        assert_eq!(prev, 2, "all observations inside finite buckets");
    }

    #[test]
    fn empty_histogram_snapshots_cleanly() {
        let r = Registry::new();
        let _h = r.histogram("idle_seconds", "Never recorded", Unit::Seconds);
        let snap = r.snapshot();
        let hist = snap.histogram("idle_seconds", None).expect("series exists");
        assert_eq!(hist.count, 0);
        assert_eq!(hist.sum, 0.0);
        assert!(hist.buckets.is_empty());
        assert_eq!(hist.mean(), None);
        assert_eq!(hist.max_bound(), None);
    }

    #[test]
    fn render_is_deterministic() {
        let a = populated().render();
        let b = populated().render();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE fleet_barrier_wait_seconds histogram"));
        assert!(a.contains("fleet_barrier_wait_seconds_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(!a.contains("discovery_silhouette"), "unset gauge family omitted");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("odd_total", "odd labels", "class", "a\"b\\c").inc();
        let rendered = r.render();
        assert!(rendered.contains("odd_total{class=\"a\\\"b\\\\c\"} 1"), "{rendered}");
    }

    #[test]
    fn quantiles_come_from_log2_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", Unit::Seconds);
        // 99 fast observations (≤ 1023 ns bucket) and one slow outlier.
        for _ in 0..99 {
            h.record(1000);
        }
        h.record(1_000_000);
        let snap = r.snapshot();
        let hist = snap.histogram("lat_seconds", None).expect("series exists");
        let p50 = hist.p50().expect("non-empty");
        assert!((p50 - 1.023e-6).abs() < 1e-12, "median sits in the 1023 ns bucket: {p50}");
        let p99 = hist.p99().expect("non-empty");
        assert!((p99 - 1.023e-6).abs() < 1e-12, "p99 still inside the fast bucket: {p99}");
        let p100 = hist.quantile(1.0).expect("non-empty");
        assert!(p100 >= 1e-3, "the outlier dominates the max: {p100}");
        assert_eq!(hist.quantile(1.5), None, "improper fraction");
        assert_eq!(hist.quantile(-0.1), None);
    }

    #[test]
    fn quantile_of_empty_or_unbounded_is_none() {
        let empty = HistogramSample {
            name: "x_seconds".into(),
            label: None,
            unit: "seconds".into(),
            count: 0,
            sum: 0.0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.p50(), None);
        // All mass in the unbounded final bucket: trimmed buckets are
        // empty, so no finite bound covers any quantile.
        let unbounded = HistogramSample { count: 5, ..empty };
        assert_eq!(unbounded.p99(), None);
    }

    #[test]
    fn merged_series_form_the_fleet_wide_distribution() {
        let r = Registry::new();
        for (shard, v) in [("0", 100u64), ("1", 1000), ("2", 100_000)] {
            r.histogram_with("fleet_barrier_wait_seconds", "wait", Unit::Seconds, "shard", shard)
                .record(v);
        }
        let snap = r.snapshot();
        let merged = snap.histogram_merged("fleet_barrier_wait_seconds").expect("three series");
        assert_eq!(merged.count, 3);
        assert!((merged.sum - 101_100.0e-9).abs() < 1e-12);
        let mut prev = 0;
        for b in &merged.buckets {
            assert!(b.count >= prev, "merged buckets stay cumulative");
            prev = b.count;
        }
        assert_eq!(prev, 3);
        let p99 = merged.p99().expect("non-empty");
        assert!(
            (p99 - 131.071e-6).abs() < 1e-9,
            "p99 of three singletons is the slowest shard's bucket: {p99}"
        );
        assert_eq!(snap.histogram_merged("absent_seconds"), None);
    }
}
