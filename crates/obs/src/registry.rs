//! The [`Registry`]: named, labelled families of lock-free instruments.
//!
//! Handle resolution (`counter`/`gauge`/`histogram` via the [`Recorder`]
//! impl) takes a mutex, so callers resolve handles **once** — at
//! construction, per shard, or per class — and then update through the
//! lock-free handles forever after. The registry is only re-entered at
//! export time ([`Registry::render`] / [`Registry::snapshot`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, Gauge, Histogram};
use crate::recorder::{CounterHandle, GaugeHandle, HistogramHandle, Recorder};

/// Upper bound on distinct label values per metric family. Resolution
/// beyond the cap returns a disabled handle instead of growing without
/// bound — a misbehaving label (say, an instance id) degrades telemetry,
/// not the process.
pub const MAX_SERIES_PER_METRIC: usize = 1024;

/// Measurement unit of a histogram's raw values; controls export scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Raw values are nanoseconds; exported scaled to seconds.
    Seconds,
    /// Raw values are dimensionless counts; exported unscaled.
    Count,
}

impl Unit {
    /// Multiplier applied to raw values at export time.
    #[must_use]
    pub fn scale(self) -> f64 {
        match self {
            Unit::Seconds => 1e-9,
            Unit::Count => 1.0,
        }
    }

    /// Stable lowercase name used in JSON snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Unit::Seconds => "seconds",
            Unit::Count => "count",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MetricKind {
    Counter,
    Gauge,
    Histogram(Unit),
}

#[derive(Debug)]
pub(crate) struct MetricFamily {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) label_key: Option<String>,
    /// Series keyed by label value; `None` for the unlabelled series.
    pub(crate) series: BTreeMap<Option<String>, Instrument>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: BTreeMap<String, MetricFamily>,
}

/// Collection of metric families, shared via `Arc` between the run loop
/// and whoever exports at the end.
///
/// First registration wins: re-resolving an existing metric with a
/// conflicting kind or label key returns a disabled handle rather than
/// panicking mid-run.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry behind an `Arc`, the shape every
    /// instrumented component accepts.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn resolve(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        label: Option<(&str, &str)>,
    ) -> Option<Instrument> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let family = inner.metrics.entry(name.to_string()).or_insert_with(|| MetricFamily {
            help: help.to_string(),
            kind,
            label_key: label.map(|(k, _)| k.to_string()),
            series: BTreeMap::new(),
        });
        if family.kind != kind || family.label_key.as_deref() != label.map(|(k, _)| k) {
            return None;
        }
        let series_key = label.map(|(_, v)| v.to_string());
        if !family.series.contains_key(&series_key) && family.series.len() >= MAX_SERIES_PER_METRIC
        {
            return None;
        }
        let instrument = family.series.entry(series_key).or_insert_with(|| match kind {
            MetricKind::Counter => Instrument::Counter(Arc::new(Counter::new())),
            MetricKind::Gauge => Instrument::Gauge(Arc::new(Gauge::new())),
            MetricKind::Histogram(_) => Instrument::Histogram(Arc::new(Histogram::new())),
        });
        Some(instrument.clone())
    }

    /// Iterates families for the exporters.
    pub(crate) fn with_families<R>(
        &self,
        f: impl FnOnce(&BTreeMap<String, MetricFamily>) -> R,
    ) -> R {
        let inner = self.inner.lock().expect("registry poisoned");
        f(&inner.metrics)
    }
}

impl Recorder for Registry {
    fn counter(&self, name: &str, help: &str) -> CounterHandle {
        match self.resolve(name, help, MetricKind::Counter, None) {
            Some(Instrument::Counter(c)) => CounterHandle::live(c),
            _ => CounterHandle::disabled(),
        }
    }

    fn counter_with(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> CounterHandle {
        match self.resolve(name, help, MetricKind::Counter, Some((label_key, label_value))) {
            Some(Instrument::Counter(c)) => CounterHandle::live(c),
            _ => CounterHandle::disabled(),
        }
    }

    fn gauge(&self, name: &str, help: &str) -> GaugeHandle {
        match self.resolve(name, help, MetricKind::Gauge, None) {
            Some(Instrument::Gauge(g)) => GaugeHandle::live(g),
            _ => GaugeHandle::disabled(),
        }
    }

    fn gauge_with(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        label_value: &str,
    ) -> GaugeHandle {
        match self.resolve(name, help, MetricKind::Gauge, Some((label_key, label_value))) {
            Some(Instrument::Gauge(g)) => GaugeHandle::live(g),
            _ => GaugeHandle::disabled(),
        }
    }

    fn histogram(&self, name: &str, help: &str, unit: Unit) -> HistogramHandle {
        match self.resolve(name, help, MetricKind::Histogram(unit), None) {
            Some(Instrument::Histogram(h)) => HistogramHandle::live(h),
            _ => HistogramHandle::disabled(),
        }
    }

    fn histogram_with(
        &self,
        name: &str,
        help: &str,
        unit: Unit,
        label_key: &str,
        label_value: &str,
    ) -> HistogramHandle {
        match self.resolve(name, help, MetricKind::Histogram(unit), Some((label_key, label_value)))
        {
            Some(Instrument::Histogram(h)) => HistogramHandle::live(h),
            _ => HistogramHandle::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_series_resolves_to_same_instrument() {
        let r = Registry::new();
        let a = r.counter("jobs_total", "jobs");
        let b = r.counter("jobs_total", "jobs");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), Some(3), "both handles hit one counter");
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("drops_total", "drops", "class", "0");
        let b = r.counter_with("drops_total", "drops", "class", "1");
        a.inc();
        assert_eq!(a.value(), Some(1));
        assert_eq!(b.value(), Some(0));
    }

    #[test]
    fn kind_conflict_yields_disabled_handle() {
        let r = Registry::new();
        let c = r.counter("x_total", "first wins");
        assert!(c.enabled());
        let g = r.gauge("x_total", "conflicting kind");
        assert!(!g.enabled());
        let h = r.histogram("x_total", "conflicting kind", Unit::Count);
        assert!(!h.enabled());
        // Original series still works.
        c.inc();
        assert_eq!(c.value(), Some(1));
    }

    #[test]
    fn label_key_conflict_yields_disabled_handle() {
        let r = Registry::new();
        assert!(r.counter_with("y_total", "h", "class", "0").enabled());
        assert!(!r.counter_with("y_total", "h", "shard", "0").enabled());
        assert!(!r.counter("y_total", "h").enabled());
    }

    #[test]
    fn series_cardinality_is_capped() {
        let r = Registry::new();
        for i in 0..MAX_SERIES_PER_METRIC {
            assert!(r.counter_with("cap_total", "h", "id", &i.to_string()).enabled());
        }
        let over = r.counter_with("cap_total", "h", "id", "overflow");
        assert!(!over.enabled(), "cap exceeded series must be disabled");
        // Existing series remain resolvable.
        assert!(r.counter_with("cap_total", "h", "id", "0").enabled());
    }
}
