//! `aging-obs` — zero-overhead telemetry for the software-aging fleet.
//!
//! The paper's adaptive-prediction claim is about behaviour *while the
//! system runs*; this crate is the measurement substrate that exposes it:
//! a [`Registry`] of lock-free instruments ([`Counter`], [`Gauge`],
//! log2-bucket [`Histogram`]), labelled families keyed by class or shard
//! id, and two exporters — Prometheus text format ([`Registry::render`])
//! and a serde-JSON [`TelemetrySnapshot`] embedded in `FleetReport`.
//!
//! Next to the metrics sits the causal trace ([`trace`] module): a
//! structured [`Event`] stream recorded into a bounded [`FlightRecorder`]
//! ring, queried through [`Trace::causal_chain`] and exported as Chrome
//! trace-event JSON (Perfetto) or JSONL. Metrics aggregate; the trace
//! explains — "why did this class refit at t=412 s" is one parent-id walk.
//!
//! # Design rules
//!
//! - **One branch when off.** Instrumented code holds handles
//!   ([`CounterHandle`], [`GaugeHandle`], [`HistogramHandle`]) resolved
//!   through the [`Recorder`] trait. With no registry attached the handle
//!   is `None` inside, every update is a single branch, and
//!   [`HistogramHandle::span`] never reads the clock.
//! - **No `Instant::now()` per checkpoint row.** Phase timing is
//!   per-phase-per-epoch via the [`SpanTimer`] RAII guard; per-row work
//!   only ever touches relaxed atomics, and counters are bumped
//!   batch-wise.
//! - **Resolve once, record forever.** Handle resolution takes the
//!   registry mutex; hot loops resolve their handles up front (per shard,
//!   per class) and then never re-enter the registry.
//! - **Exporters never lie.** Unset gauges are omitted rather than
//!   rendered as zero, NaN/infinite values never reach JSON, and
//!   rendering is a deterministic function of what was recorded (families
//!   are sorted, duration scaling is exact decimal-shift).
//!
//! # Metric naming conventions
//!
//! `<subsystem>_<what>_<unit-or-total>`: subsystem prefixes are `fleet_`,
//! `adapt_`, `discovery_`, `tune_` and `ml_`; counters end in `_total`,
//! duration histograms in `_seconds`; the single allowed label is `class`
//! (adapt, discovery and tune families) or `shard` (fleet phase
//! families).
//!
//! # Example
//!
//! ```
//! use aging_obs::{Recorder, Registry, Unit};
//!
//! let registry = Registry::shared();
//! // Resolve handles once, outside the hot loop.
//! let epochs = registry.counter("fleet_epochs_total", "Epochs completed");
//! let wait = registry.histogram_with(
//!     "fleet_barrier_wait_seconds",
//!     "Barrier wait per epoch",
//!     Unit::Seconds,
//!     "shard",
//!     "0",
//! );
//! for _ in 0..3 {
//!     let span = wait.span(); // RAII: records elapsed time on drop
//!     // ... epoch work ...
//!     span.finish();
//!     epochs.inc();
//! }
//! assert_eq!(registry.snapshot().counter("fleet_epochs_total", None), Some(3));
//! assert!(registry.render().contains("# TYPE fleet_barrier_wait_seconds histogram"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod instruments;
mod recorder;
mod registry;
pub mod trace;

pub use export::{
    BucketSample, CounterSample, GaugeSample, HistogramSample, LabelSample, TelemetrySnapshot,
};
pub use instruments::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use recorder::{
    CounterHandle, GaugeHandle, HistogramHandle, NoopRecorder, Recorder, SpanTimer,
};
pub use registry::{Registry, Unit, MAX_SERIES_PER_METRIC};
pub use trace::{
    trace_of, Event, EventId, EventKind, EventScope, EventSink, FlightRecorder, NoopSink, Trace,
    TraceHandle, DEFAULT_FLIGHT_RECORDER_CAPACITY,
};

/// Views an optional shared registry as a [`Recorder`], falling back to
/// the no-op recorder — the idiom instrumented crates use at handle
/// resolution sites:
///
/// ```
/// use aging_obs::{recorder_of, Registry};
/// use std::sync::Arc;
///
/// let telemetry: Option<Arc<Registry>> = Some(Registry::shared());
/// let epochs = recorder_of(&telemetry).counter("fleet_epochs_total", "Epochs");
/// epochs.inc();
/// let off: Option<Arc<Registry>> = None;
/// assert!(!recorder_of(&off).counter("fleet_epochs_total", "Epochs").enabled());
/// ```
#[must_use]
pub fn recorder_of(telemetry: &Option<std::sync::Arc<Registry>>) -> &dyn Recorder {
    match telemetry {
        Some(registry) => registry.as_ref(),
        None => &NoopRecorder,
    }
}
