//! Causal event tracing: the [`Event`] schema, the [`EventSink`] trait,
//! the bounded [`FlightRecorder`] ring and the [`Trace`] query/export API.
//!
//! Metrics say *how much* and *how long*; the trace says *why*. Every
//! adaptation decision — a drift observation crossing its threshold, the
//! sticky trigger arming and firing, a refit starting and finishing, a
//! generation publish, a shard applying the swap, a threshold
//! re-derivation — is recorded as a structured [`Event`] carrying a
//! sequence number, a monotonic timestamp, its class/shard/generation
//! context and the id of the event that *caused* it. Walking parent ids
//! ([`Trace::causal_chain`]) answers "why did this refit happen" from the
//! recorded stream instead of inferring it from histogram deltas.
//!
//! The discipline matches the metric handles ([`crate::Recorder`]): an
//! instrumented call site holds a [`TraceHandle`], and when tracing is off
//! the whole cost is one branch on a `None` — the disabled handle never
//! reads the clock, never allocates and never touches an atomic. The live
//! sink is the [`FlightRecorder`]: a bounded ring that keeps the newest
//! events, counts every displaced one, and can be dumped as JSONL when a
//! worker panics or exported as Chrome trace-event JSON for Perfetto.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Identifier of a recorded event: its sequence number.
pub type EventId = u64;

/// Default [`FlightRecorder`] capacity — generous enough that a full
/// example run keeps every adaptation event, small enough (a few MB) to
/// sit in memory for the whole run.
pub const DEFAULT_FLIGHT_RECORDER_CAPACITY: usize = 65_536;

/// What happened. Scalar payloads only on the hot variants, so building a
/// kind for a disabled handle is register moves — no allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A drift observation crossed the detector's threshold.
    DriftObserved {
        /// Error EWMA (seconds) at the moment the detector fired.
        error_ewma_secs: f64,
        /// The error-level threshold (seconds) it crossed.
        threshold_secs: f64,
    },
    /// The sticky retrain trigger armed (drift-driven or scheduled).
    TriggerArmed {
        /// `true` when the periodic schedule armed it, `false` for drift.
        scheduled: bool,
    },
    /// The armed trigger passed the buffer gate and released a retrain.
    TriggerFired {
        /// Labelled rows in the sliding buffer when the gate opened.
        buffered: u64,
    },
    /// A model refit started on a retrainer thread.
    RefitStarted {
        /// Training rows in the refit dataset.
        rows: u64,
    },
    /// The refit returned.
    RefitFinished {
        /// Whether the learner produced a model.
        ok: bool,
    },
    /// A new model generation was published to the model service.
    GenerationPublished,
    /// A fleet shard re-pinned onto a published generation at an epoch
    /// boundary.
    SwapApplied,
    /// A threshold policy re-derived the operating thresholds.
    ThresholdsRederived {
        /// New drift error-level threshold (seconds).
        drift_threshold_secs: f64,
        /// New predictive rejuvenation threshold (seconds), when the
        /// policy overrides the spec.
        rejuvenation_threshold_secs: Option<f64>,
    },
    /// The bounded checkpoint bus shed a batch under backpressure.
    BusShed {
        /// Labelled checkpoints in the shed batch.
        checkpoints: u64,
    },
    /// Class discovery evaluated the fleet partition.
    DiscoveryEvaluated {
        /// Mean silhouette of the proposed partition.
        silhouette: f64,
        /// Classes active after the evaluation.
        active_classes: u64,
        /// Instances with a ready aging signature.
        ready_instances: u64,
    },
    /// Discovery split a new class off an existing one.
    ClassSplit {
        /// The class the new one was seeded from.
        seeded_from: String,
    },
    /// Discovery retired a class, folding it into another.
    ClassMerged {
        /// The surviving class.
        into: String,
    },
    /// Discovery moved one instance to another class.
    ClassReassigned {
        /// Fleet-wide instance index.
        instance: u64,
        /// The class the instance left.
        from: String,
    },
    /// The lock-step epoch barrier completed (leader-emitted, one per
    /// epoch).
    EpochCompleted {
        /// Zero-based epoch index.
        epoch: u64,
    },
    /// A checkpoint journal replay restored adaptation state on restart.
    JournalReplayed {
        /// Journal records applied during the replay.
        records: u64,
    },
    /// The checkpoint journal was compacted past the sliding-buffer
    /// horizon.
    JournalCompacted {
        /// Records surviving the compaction.
        kept_records: u64,
        /// Records dropped past the retention horizon.
        dropped_records: u64,
    },
    /// Policy search scored one candidate configuration by counterfactual
    /// journal replay.
    CandidateEvaluated {
        /// Zero-based candidate index within its search round.
        round: u64,
        /// The neighbourhood operator that generated the candidate.
        operator: String,
        /// Replay objective (seconds); `None` when the candidate was
        /// unscoreable (no labelled rows, unstable replay digest).
        objective_secs: Option<f64>,
        /// Whether simulated annealing accepted the candidate as the new
        /// search position.
        accepted: bool,
    },
    /// One policy-search round over a class completed.
    TuneRoundCompleted {
        /// Monotone per-tuner round counter.
        round: u64,
        /// Best objective found so far (seconds), when finite.
        best_objective_secs: Option<f64>,
        /// The incumbent objective the round searched against (seconds),
        /// when finite.
        incumbent_objective_secs: Option<f64>,
    },
    /// The promotion gate fired: a searched policy beat the incumbent by
    /// at least the configured margin and was published to the router.
    PolicyPromoted {
        /// Replayed objective of the displaced incumbent (seconds).
        incumbent_objective_secs: Option<f64>,
        /// Replayed objective of the promoted candidate (seconds).
        candidate_objective_secs: Option<f64>,
    },
    /// The event-driven scheduler dispatched one shard epoch (parented on
    /// the shard's previous `EpochScheduled`, forming a per-shard chain).
    EpochScheduled {
        /// Zero-based epoch index the shard is about to run.
        epoch: u64,
        /// Live instances on the shard when the epoch was dispatched.
        live: u64,
    },
    /// An instance joined the live fleet (scripted churn or autoscaling).
    InstanceJoined {
        /// Fleet-wide instance index of the joiner.
        instance: u64,
        /// Whether an autoscale rule (vs. a scripted join) spawned it.
        autoscaled: bool,
    },
    /// An instance left the live fleet.
    InstanceRetired {
        /// Fleet-wide instance index of the leaver.
        instance: u64,
        /// Whether a churn plan forced the retire (vs. aging out).
        forced: bool,
    },
}

impl EventKind {
    /// Stable name of the variant, used as the Chrome trace event name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DriftObserved { .. } => "DriftObserved",
            EventKind::TriggerArmed { .. } => "TriggerArmed",
            EventKind::TriggerFired { .. } => "TriggerFired",
            EventKind::RefitStarted { .. } => "RefitStarted",
            EventKind::RefitFinished { .. } => "RefitFinished",
            EventKind::GenerationPublished => "GenerationPublished",
            EventKind::SwapApplied => "SwapApplied",
            EventKind::ThresholdsRederived { .. } => "ThresholdsRederived",
            EventKind::BusShed { .. } => "BusShed",
            EventKind::DiscoveryEvaluated { .. } => "DiscoveryEvaluated",
            EventKind::ClassSplit { .. } => "ClassSplit",
            EventKind::ClassMerged { .. } => "ClassMerged",
            EventKind::ClassReassigned { .. } => "ClassReassigned",
            EventKind::EpochCompleted { .. } => "EpochCompleted",
            EventKind::JournalReplayed { .. } => "JournalReplayed",
            EventKind::JournalCompacted { .. } => "JournalCompacted",
            EventKind::CandidateEvaluated { .. } => "CandidateEvaluated",
            EventKind::TuneRoundCompleted { .. } => "TuneRoundCompleted",
            EventKind::PolicyPromoted { .. } => "PolicyPromoted",
            EventKind::EpochScheduled { .. } => "EpochScheduled",
            EventKind::InstanceJoined { .. } => "InstanceJoined",
            EventKind::InstanceRetired { .. } => "InstanceRetired",
        }
    }
}

/// One recorded event: the [`EventKind`] plus its position in the stream
/// and its causal context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the global stream; doubles as the event's id.
    pub seq: EventId,
    /// Nanoseconds since the recorder was created (monotonic clock).
    pub ts_nanos: u64,
    /// Service class the event belongs to, when class-scoped.
    pub class: Option<String>,
    /// Fleet shard that emitted the event, when shard-scoped.
    pub shard: Option<u32>,
    /// Model generation the event refers to, when generation-scoped.
    pub generation: Option<u64>,
    /// Id of the event that caused this one; `None` for root events.
    pub parent: Option<EventId>,
    /// What happened.
    pub kind: EventKind,
}

/// Borrowed context attached to an emitted event: class, shard,
/// generation and causal parent. All optional; [`EventScope::root`] is
/// the empty scope.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventScope<'a> {
    /// Service class, when the event is class-scoped.
    pub class: Option<&'a str>,
    /// Fleet shard index, when shard-scoped.
    pub shard: Option<u32>,
    /// Model generation, when generation-scoped.
    pub generation: Option<u64>,
    /// Causal parent id, `None` for root events.
    pub parent: Option<EventId>,
}

impl<'a> EventScope<'a> {
    /// An empty scope: no class, no shard, no generation, no parent.
    #[must_use]
    pub fn root() -> Self {
        Self::default()
    }

    /// Sets the service class.
    #[must_use]
    pub fn class(mut self, class: &'a str) -> Self {
        self.class = Some(class);
        self
    }

    /// Sets the shard index.
    #[must_use]
    pub fn shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Sets the model generation.
    #[must_use]
    pub fn generation(mut self, generation: u64) -> Self {
        self.generation = Some(generation);
        self
    }

    /// Sets the causal parent (a `None` keeps the event a root).
    #[must_use]
    pub fn parent(mut self, parent: Option<EventId>) -> Self {
        self.parent = parent;
        self
    }
}

/// Destination of emitted events.
///
/// The default method drops everything, so a sink that records nothing is
/// `impl EventSink for NoopSink {}` — the same discipline as
/// [`crate::Recorder`]. Instrumented code never calls a sink directly; it
/// goes through a [`TraceHandle`], whose disabled form short-circuits
/// before any dispatch.
pub trait EventSink: std::fmt::Debug + Send + Sync {
    /// Records one event, returning its id when the sink kept it.
    fn record(&self, scope: EventScope<'_>, kind: EventKind) -> Option<EventId> {
        let _ = (scope, kind);
        None
    }
}

/// Sink that drops every event; the tracing-off fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {}

/// Handle to an event sink, possibly disabled.
///
/// The disabled handle is the zero-cost form: [`TraceHandle::emit`] is one
/// branch on a `None` — no clock read, no allocation, no atomics. Hot call
/// sites build their [`EventKind`] from scalars, so constructing the
/// argument costs nothing either; kinds carrying strings (the discovery
/// events) sit on rare paths and may check [`TraceHandle::enabled`] first.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn EventSink>>);

impl TraceHandle {
    /// A handle that drops every event.
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A live handle feeding `sink`.
    #[must_use]
    pub fn sink(sink: Arc<dyn EventSink>) -> Self {
        Self(Some(sink))
    }

    /// Whether emitted events reach a live sink.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one event; returns its id when a live sink recorded it.
    #[inline]
    pub fn emit(&self, scope: EventScope<'_>, kind: EventKind) -> Option<EventId> {
        match &self.0 {
            Some(sink) => sink.record(scope, kind),
            None => None,
        }
    }
}

/// Bounded ring that keeps the newest events and counts every drop.
///
/// Sequence numbers and timestamps come from one shared atomic and the
/// recorder's monotonic epoch, so the stream is globally ordered no matter
/// which thread emits. Slot writes take a per-slot mutex — uncontended
/// except when two writers collide on the same ring position, i.e. a full
/// capacity apart — while sequence allocation and drop accounting stay
/// lock-free. (A wait-free slot write needs `unsafe`, which this crate
/// forbids.)
///
/// Overflow policy: the ring keeps the **newest** `capacity` events. A
/// writer that finds its slot occupied by an *older* event displaces it
/// (one drop); a stalled writer that finds a *newer* resident drops its
/// own event instead (also one drop), so `recorded == kept + dropped`
/// always holds.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    dump_fired: AtomicBool,
    dumps: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder keeping at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            started: Instant::now(),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dump_fired: AtomicBool::new(false),
            dumps: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Creates a default-capacity recorder behind an `Arc`, the shape
    /// every instrumented component accepts.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A live [`TraceHandle`] feeding this recorder.
    #[must_use]
    pub fn handle(self: &Arc<Self>) -> TraceHandle {
        TraceHandle::sink(Arc::clone(self) as Arc<dyn EventSink>)
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events emitted into the recorder (kept + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events displaced by ring overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshots the ring into a seq-ordered [`Trace`].
    #[must_use]
    pub fn trace(&self) -> Trace {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight recorder slot poisoned").clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        Trace { events, dropped: self.dropped() }
    }

    /// The ring as JSONL, one event per line — the worker-panic dump.
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        self.trace().to_jsonl()
    }

    /// Dumps the ring as JSONL to stderr, at most once per recorder.
    ///
    /// Every panic path — a fleet worker, the barrier leader's discovery
    /// window, a refit-pool thread — calls this instead of carrying its
    /// own "first panicking thread dumps, siblings skip" flag; the gate
    /// lives here so concurrent paths cannot race each other into a
    /// double dump. Returns whether *this* call performed the dump.
    pub fn dump_once(&self, context: &str) -> bool {
        if self.dump_fired.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.dumps.fetch_add(1, Ordering::SeqCst);
        let trace = self.trace();
        eprintln!(
            "{context} — dumping flight recorder ({} events, {} displaced):",
            trace.len(),
            trace.dropped
        );
        eprint!("{}", trace.to_jsonl());
        true
    }

    /// Panic dumps performed; 0 or 1, since [`FlightRecorder::dump_once`]
    /// gates.
    #[must_use]
    pub fn dumped(&self) -> u64 {
        self.dumps.load(Ordering::SeqCst)
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, scope: EventScope<'_>, kind: EventKind) -> Option<EventId> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let ts_nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = Event {
            seq,
            ts_nanos,
            class: scope.class.map(str::to_string),
            shard: scope.shard,
            generation: scope.generation,
            parent: scope.parent,
            kind,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut resident = slot.lock().expect("flight recorder slot poisoned");
        match resident.as_ref() {
            // A writer that stalled a full ring-lap behind the stream
            // loses to the newer resident: drop the incoming event.
            Some(newer) if newer.seq > seq => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                *resident = Some(event);
            }
            None => *resident = Some(event),
        }
        Some(seq)
    }
}

/// A seq-ordered snapshot of recorded events plus the overflow count —
/// the query and export surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in ascending sequence order (gaps where the ring dropped).
    pub events: Vec<Event>,
    /// Events displaced by ring overflow.
    pub dropped: u64,
}

impl Trace {
    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up an event by id.
    #[must_use]
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.binary_search_by_key(&id, |e| e.seq).ok().map(|i| &self.events[i])
    }

    /// The [`EventKind::GenerationPublished`] events of one class, in
    /// publish order.
    #[must_use]
    pub fn publishes(&self, class: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::GenerationPublished)
                    && e.class.as_deref() == Some(class)
            })
            .collect()
    }

    /// Why did `class` publish `generation`? Walks parent ids from the
    /// matching [`EventKind::GenerationPublished`] back to its root (the
    /// drift observation or scheduled arm), then forward to its direct
    /// consequences (the per-shard swaps and threshold re-derivations
    /// parented on the publish). Returns the chain in sequence order;
    /// empty when the publish is not in the trace.
    #[must_use]
    pub fn causal_chain(&self, class: &str, generation: u64) -> Vec<&Event> {
        let Some(publish) = self.events.iter().find(|e| {
            matches!(e.kind, EventKind::GenerationPublished)
                && e.class.as_deref() == Some(class)
                && e.generation == Some(generation)
        }) else {
            return Vec::new();
        };
        let mut chain = vec![publish];
        // Ancestors: parents always carry lower seqs (they were recorded
        // first), so requiring strict descent terminates even on a
        // corrupted stream.
        let mut cursor = publish;
        while let Some(parent) = cursor.parent.and_then(|id| self.get(id)) {
            if parent.seq >= cursor.seq {
                break;
            }
            chain.push(parent);
            cursor = parent;
        }
        // Direct consequences of the publish (swap applies, re-derived
        // thresholds).
        chain.extend(self.events.iter().filter(|e| e.parent == Some(publish.seq)));
        chain.sort_by_key(|e| e.seq);
        chain.dedup_by_key(|e| e.seq);
        chain
    }

    /// Serializes the trace as JSONL: one [`Event`] per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON (the "JSON Array
    /// Format" with a `traceEvents` wrapper), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Layout: one track (`tid`) per service class plus track 0 for
    /// class-less fleet events. Refits appear as duration events
    /// (`"ph":"X"`, a [`EventKind::RefitStarted`] paired with the
    /// [`EventKind::RefitFinished`] that parents on it); every other
    /// event is an instant (`"ph":"i"`). Each entry carries its `seq` and
    /// `parent` under `args`, so the causal graph survives the export.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        // Track ids: 0 = fleet-wide, classes numbered by first appearance.
        let mut tracks: Vec<&str> = Vec::new();
        fn tid_of<'a>(class: Option<&'a str>, tracks: &mut Vec<&'a str>) -> usize {
            match class {
                None => 0,
                Some(c) => match tracks.iter().position(|t| *t == c) {
                    Some(i) => i + 1,
                    None => {
                        tracks.push(c);
                        tracks.len()
                    }
                },
            }
        }
        // Pair each RefitStarted with the finish that parents on it.
        let mut finish_of: Vec<(EventId, &Event)> = Vec::new();
        for event in &self.events {
            if let EventKind::RefitFinished { .. } = event.kind {
                if let Some(parent) = event.parent {
                    finish_of.push((parent, event));
                }
            }
        }
        let mut entries: Vec<String> = Vec::new();
        for event in &self.events {
            let tid = tid_of(event.class.as_deref(), &mut tracks);
            let ts_us = event.ts_nanos as f64 / 1_000.0;
            let mut args =
                vec![("seq", json_u64(event.seq)), ("parent", json_opt_u64(event.parent))];
            if let Some(shard) = event.shard {
                args.push(("shard", json_u64(u64::from(shard))));
            }
            if let Some(generation) = event.generation {
                args.push(("generation", json_u64(generation)));
            }
            kind_args(&event.kind, &mut args);
            let args = render_args(&args);
            let name = event.kind.name();
            let entry = match &event.kind {
                EventKind::RefitStarted { .. } => {
                    let dur_us = finish_of.iter().find(|(parent, _)| *parent == event.seq).map(
                        |(_, finish)| {
                            (finish.ts_nanos.saturating_sub(event.ts_nanos)) as f64 / 1_000.0
                        },
                    );
                    match dur_us {
                        Some(dur) => format!(
                            "{{\"name\":\"refit\",\"cat\":\"adapt\",\"ph\":\"X\",\"ts\":{},\
                             \"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                            json_f64(ts_us),
                            json_f64(dur),
                        ),
                        // Unfinished refit (e.g. panic mid-fit): degrade
                        // to an instant rather than invent a duration.
                        None => instant_entry(name, ts_us, tid, &args),
                    }
                }
                _ => instant_entry(name, ts_us, tid, &args),
            };
            entries.push(entry);
        }
        // Name the tracks, Perfetto-style, via metadata events.
        let mut metadata = vec![
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{\"name\":\"software-aging\"}}"
                .to_string(),
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fleet\"}}"
                .to_string(),
        ];
        for (i, class) in tracks.iter().enumerate() {
            metadata.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                i + 1,
                json_str(&format!("class {class}")),
            ));
        }
        metadata.extend(entries);
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{}}}",
            metadata.join(","),
            self.dropped
        )
    }
}

fn instant_entry(name: &str, ts_us: f64, tid: usize, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"adapt\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
         \"s\":\"t\",\"args\":{args}}}",
        json_str(name),
        json_f64(ts_us),
    )
}

/// Appends the kind's payload fields as pre-rendered JSON args.
fn kind_args(kind: &EventKind, args: &mut Vec<(&'static str, String)>) {
    match kind {
        EventKind::DriftObserved { error_ewma_secs, threshold_secs } => {
            args.push(("error_ewma_secs", json_f64(*error_ewma_secs)));
            args.push(("threshold_secs", json_f64(*threshold_secs)));
        }
        EventKind::TriggerArmed { scheduled } => {
            args.push(("scheduled", scheduled.to_string()));
        }
        EventKind::TriggerFired { buffered } => args.push(("buffered", json_u64(*buffered))),
        EventKind::RefitStarted { rows } => args.push(("rows", json_u64(*rows))),
        EventKind::RefitFinished { ok } => args.push(("ok", ok.to_string())),
        EventKind::GenerationPublished | EventKind::SwapApplied => {}
        EventKind::ThresholdsRederived { drift_threshold_secs, rejuvenation_threshold_secs } => {
            args.push(("drift_threshold_secs", json_f64(*drift_threshold_secs)));
            if let Some(t) = rejuvenation_threshold_secs {
                args.push(("rejuvenation_threshold_secs", json_f64(*t)));
            }
        }
        EventKind::BusShed { checkpoints } => args.push(("checkpoints", json_u64(*checkpoints))),
        EventKind::DiscoveryEvaluated { silhouette, active_classes, ready_instances } => {
            args.push(("silhouette", json_f64(*silhouette)));
            args.push(("active_classes", json_u64(*active_classes)));
            args.push(("ready_instances", json_u64(*ready_instances)));
        }
        EventKind::ClassSplit { seeded_from } => args.push(("seeded_from", json_str(seeded_from))),
        EventKind::ClassMerged { into } => args.push(("into", json_str(into))),
        EventKind::ClassReassigned { instance, from } => {
            args.push(("instance", json_u64(*instance)));
            args.push(("from", json_str(from)));
        }
        EventKind::EpochCompleted { epoch } => args.push(("epoch", json_u64(*epoch))),
        EventKind::JournalReplayed { records } => args.push(("records", json_u64(*records))),
        EventKind::JournalCompacted { kept_records, dropped_records } => {
            args.push(("kept_records", json_u64(*kept_records)));
            args.push(("dropped_records", json_u64(*dropped_records)));
        }
        EventKind::CandidateEvaluated { round, operator, objective_secs, accepted } => {
            args.push(("round", json_u64(*round)));
            args.push(("operator", json_str(operator)));
            args.push(("objective_secs", json_opt_f64(*objective_secs)));
            args.push(("accepted", accepted.to_string()));
        }
        EventKind::TuneRoundCompleted { round, best_objective_secs, incumbent_objective_secs } => {
            args.push(("round", json_u64(*round)));
            args.push(("best_objective_secs", json_opt_f64(*best_objective_secs)));
            args.push(("incumbent_objective_secs", json_opt_f64(*incumbent_objective_secs)));
        }
        EventKind::PolicyPromoted { incumbent_objective_secs, candidate_objective_secs } => {
            args.push(("incumbent_objective_secs", json_opt_f64(*incumbent_objective_secs)));
            args.push(("candidate_objective_secs", json_opt_f64(*candidate_objective_secs)));
        }
        EventKind::EpochScheduled { epoch, live } => {
            args.push(("epoch", json_u64(*epoch)));
            args.push(("live", json_u64(*live)));
        }
        EventKind::InstanceJoined { instance, autoscaled } => {
            args.push(("instance", json_u64(*instance)));
            args.push(("autoscaled", autoscaled.to_string()));
        }
        EventKind::InstanceRetired { instance, forced } => {
            args.push(("instance", json_u64(*instance)));
            args.push(("forced", forced.to_string()));
        }
    }
}

fn render_args(args: &[(&'static str, String)]) -> String {
    let body: Vec<String> = args.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect();
    format!("{{{}}}", body.join(","))
}

fn json_u64(v: u64) -> String {
    v.to_string()
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Finite-guarded float rendering: JSON has no NaN/Inf literals.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Borrows a trace handle from an optional flight recorder — the idiom
/// for structs that hold `Option<Arc<FlightRecorder>>`.
///
/// ```
/// use aging_obs::{trace_of, FlightRecorder};
/// use std::sync::Arc;
///
/// let off: Option<Arc<FlightRecorder>> = None;
/// assert!(!trace_of(&off).enabled());
/// let on = Some(FlightRecorder::shared());
/// assert!(trace_of(&on).enabled());
/// ```
#[must_use]
pub fn trace_of(recorder: &Option<Arc<FlightRecorder>>) -> TraceHandle {
    match recorder {
        Some(r) => r.handle(),
        None => TraceHandle::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TraceHandle::disabled();
        assert!(!t.enabled());
        assert_eq!(t.emit(EventScope::root(), EventKind::GenerationPublished), None);
    }

    #[test]
    fn noop_sink_drops_everything() {
        let t = TraceHandle::sink(Arc::new(NoopSink));
        assert!(t.enabled(), "a handle over a sink reports enabled");
        assert_eq!(t.emit(EventScope::root(), EventKind::SwapApplied), None);
    }

    #[test]
    fn events_are_sequenced_with_context() {
        let recorder = FlightRecorder::shared();
        let t = recorder.handle();
        let a = t
            .emit(
                EventScope::root().class("leak"),
                EventKind::DriftObserved { error_ewma_secs: 700.0, threshold_secs: 600.0 },
            )
            .unwrap();
        let b = t
            .emit(
                EventScope::root().class("leak").parent(Some(a)),
                EventKind::TriggerArmed { scheduled: false },
            )
            .unwrap();
        assert_eq!((a, b), (0, 1));
        let trace = recorder.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.get(b).unwrap().parent, Some(a));
        assert_eq!(trace.get(a).unwrap().class.as_deref(), Some("leak"));
        assert!(trace.get(a).unwrap().ts_nanos <= trace.get(b).unwrap().ts_nanos);
    }

    /// Builds the full drift→armed→fired→refit→publish→swap chain and
    /// walks it back through the query API.
    #[test]
    fn causal_chain_resolves_end_to_end() {
        let recorder = FlightRecorder::shared();
        let t = recorder.handle();
        let scope = || EventScope::root().class("tpcw");
        let drift = t.emit(
            scope(),
            EventKind::DriftObserved { error_ewma_secs: 900.0, threshold_secs: 600.0 },
        );
        let armed = t.emit(scope().parent(drift), EventKind::TriggerArmed { scheduled: false });
        let fired = t.emit(scope().parent(armed), EventKind::TriggerFired { buffered: 128 });
        let started = t.emit(scope().parent(fired), EventKind::RefitStarted { rows: 128 });
        let finished = t.emit(scope().parent(started), EventKind::RefitFinished { ok: true });
        let published =
            t.emit(scope().parent(finished).generation(1), EventKind::GenerationPublished);
        let _noise = t.emit(EventScope::root(), EventKind::EpochCompleted { epoch: 7 });
        let swap = t.emit(scope().parent(published).generation(1).shard(2), EventKind::SwapApplied);
        let trace = recorder.trace();
        let chain = trace.causal_chain("tpcw", 1);
        let ids: Vec<EventId> = chain.iter().map(|e| e.seq).collect();
        assert_eq!(
            ids,
            vec![
                drift.unwrap(),
                armed.unwrap(),
                fired.unwrap(),
                started.unwrap(),
                finished.unwrap(),
                published.unwrap(),
                swap.unwrap()
            ],
            "chain must run drift→armed→fired→refit→publish→swap in seq order"
        );
        assert!(trace.causal_chain("tpcw", 9).is_empty(), "unknown generation");
        assert!(trace.causal_chain("other", 1).is_empty(), "unknown class");
    }

    #[test]
    fn ring_keeps_newest_and_accounts_drops() {
        let recorder = Arc::new(FlightRecorder::with_capacity(4));
        let t = recorder.handle();
        for epoch in 0..10u64 {
            t.emit(EventScope::root(), EventKind::EpochCompleted { epoch });
        }
        assert_eq!(recorder.recorded(), 10);
        assert_eq!(recorder.dropped(), 6);
        let trace = recorder.trace();
        assert_eq!(trace.dropped, 6);
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "the newest 4 events survive");
    }

    #[test]
    fn concurrent_emitters_account_every_event() {
        let recorder = Arc::new(FlightRecorder::with_capacity(64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = recorder.handle();
                scope.spawn(move || {
                    for epoch in 0..500u64 {
                        t.emit(EventScope::root(), EventKind::EpochCompleted { epoch });
                    }
                });
            }
        });
        let trace = recorder.trace();
        assert_eq!(recorder.recorded(), 2000);
        assert_eq!(
            trace.len() as u64 + trace.dropped,
            2000,
            "kept + dropped must account every emitted event"
        );
        let mut seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        let deduped = seqs.clone();
        seqs.dedup();
        assert_eq!(seqs, deduped, "sequence numbers are unique");
    }

    #[test]
    fn dump_once_fires_exactly_once_across_threads() {
        let recorder = Arc::new(FlightRecorder::with_capacity(8));
        let t = recorder.handle();
        t.emit(EventScope::root(), EventKind::EpochCompleted { epoch: 0 });
        let wins: u64 = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let recorder = Arc::clone(&recorder);
                    scope.spawn(move || u64::from(recorder.dump_once("test panic")))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("dumper thread"))
                .sum()
        });
        assert_eq!(wins, 1, "exactly one caller performs the dump");
        assert_eq!(recorder.dumped(), 1);
        assert!(!recorder.dump_once("late caller"), "the gate stays shut");
        assert_eq!(recorder.dumped(), 1, "and the count stays 1");
    }

    #[test]
    fn jsonl_round_trips() {
        let recorder = FlightRecorder::shared();
        let t = recorder.handle();
        t.emit(
            EventScope::root().class("leak").shard(3).generation(2),
            EventKind::ThresholdsRederived {
                drift_threshold_secs: 512.0,
                rejuvenation_threshold_secs: None,
            },
        );
        let trace = recorder.trace();
        let line = trace.to_jsonl();
        let parsed: Event = serde_json::from_str(line.trim()).expect("JSONL line parses");
        assert_eq!(&parsed, &trace.events[0]);
    }

    #[test]
    fn chrome_export_is_valid_and_preserves_causality() {
        let recorder = FlightRecorder::shared();
        let t = recorder.handle();
        let fired =
            t.emit(EventScope::root().class("leak"), EventKind::TriggerFired { buffered: 64 });
        let started = t.emit(
            EventScope::root().class("leak").parent(fired),
            EventKind::RefitStarted { rows: 64 },
        );
        let finished = t.emit(
            EventScope::root().class("leak").parent(started),
            EventKind::RefitFinished { ok: true },
        );
        t.emit(
            EventScope::root().class("leak").parent(finished).generation(1),
            EventKind::GenerationPublished,
        );
        t.emit(EventScope::root(), EventKind::EpochCompleted { epoch: 0 });
        let json = recorder.trace().to_chrome_json();
        let value = serde::parse_value(&json).expect("chrome export is valid JSON");
        let obj = value.as_obj().expect("top level is an object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| match v {
                serde::Value::Arr(items) => Some(items),
                _ => None,
            })
            .expect("traceEvents array");
        // 2 metadata (process + fleet track) + 1 class track + 5 events.
        assert_eq!(events.len(), 8);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_obj())
            .filter_map(|o| {
                o.iter().find(|(k, _)| k == "ph").and_then(|(_, v)| match v {
                    serde::Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 1, "one refit duration event");
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 4, "instants for the rest");
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3, "metadata names the tracks");
    }

    proptest! {
        /// Overflow keeps exactly the newest `min(n, capacity)` events and
        /// accounts every displaced one.
        #[test]
        fn ring_overflow_keeps_newest(capacity in 1usize..40, n in 0u64..200) {
            let recorder = Arc::new(FlightRecorder::with_capacity(capacity));
            let t = recorder.handle();
            for epoch in 0..n {
                t.emit(EventScope::root(), EventKind::EpochCompleted { epoch });
            }
            let trace = recorder.trace();
            let kept = (n as usize).min(capacity) as u64;
            prop_assert_eq!(trace.len() as u64, kept);
            prop_assert_eq!(trace.dropped, n - kept);
            let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
            let expected: Vec<u64> = (n - kept..n).collect();
            prop_assert_eq!(seqs, expected);
        }
    }
}
