//! Golden-file and line-grammar tests for the Prometheus exporter.
//!
//! The grammar check is a self-contained parser of the exposition format
//! (no external dependencies) — the CI format-check job runs it to assert
//! that whatever the fleet records renders to something a Prometheus
//! scraper would accept.

use aging_obs::{Recorder, Registry, Unit};

/// Builds the registry whose rendering is pinned by `tests/golden/render.prom`.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.gauge("adapt_bus_depth_batches", "Batches queued on the checkpoint bus").set(2.0);
    r.counter_with(
        "adapt_bus_shed_checkpoints_total",
        "Checkpoints dropped by bus shedding, by class",
        "class",
        "web",
    )
    .add(5);
    r.counter_with(
        "adapt_bus_shed_checkpoints_total",
        "Checkpoints dropped by bus shedding, by class",
        "class",
        "db",
    )
    .add(2);
    let shard0 = r.histogram_with(
        "fleet_barrier_wait_seconds",
        "Barrier wait per epoch, by shard",
        Unit::Seconds,
        "shard",
        "0",
    );
    shard0.record(100);
    shard0.record(1000);
    r.histogram_with(
        "fleet_barrier_wait_seconds",
        "Barrier wait per epoch, by shard",
        Unit::Seconds,
        "shard",
        "1",
    )
    .record(0);
    r.counter("fleet_epochs_total", "Epochs completed by the fleet leader").add(3);
    let _zero = r.counter("ml_cluster_evals_total", "Clustering evaluations performed");
    r
}

#[test]
fn render_matches_golden_file() {
    let rendered = golden_registry().render();
    let golden = include_str!("golden/render.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus rendering drifted from tests/golden/render.prom — \
         if the change is intentional, update the golden file"
    );
}

// ---------------------------------------------------------------------------
// Line grammar checker
// ---------------------------------------------------------------------------

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parsed sample line: metric name, labels in order, value text.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// Parses one exposition sample line, panicking with context on any
/// grammar violation.
fn parse_sample(line: &str) -> Sample {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').unwrap_or_else(|| panic!("unclosed label block: {line}"));
            assert!(close > brace, "malformed label block: {line}");
            (&line[..brace], &line[brace..=close])
        }
        None => {
            let space = line.find(' ').unwrap_or_else(|| panic!("no value separator: {line}"));
            (&line[..space], "")
        }
    };
    assert!(valid_metric_name(name_part), "bad metric name in: {line}");

    let mut labels = Vec::new();
    if !rest.is_empty() {
        let body = &rest[1..rest.len() - 1];
        for pair in body.split(',') {
            let (k, quoted) =
                pair.split_once('=').unwrap_or_else(|| panic!("label without '=': {line}"));
            assert!(valid_label_name(k), "bad label name {k:?} in: {line}");
            assert!(
                quoted.len() >= 2 && quoted.starts_with('"') && quoted.ends_with('"'),
                "unquoted label value in: {line}"
            );
            let raw = &quoted[1..quoted.len() - 1];
            assert!(
                !raw.contains('"') || raw.contains("\\\""),
                "unescaped quote in label value: {line}"
            );
            labels.push((k.to_string(), raw.to_string()));
        }
    }

    let after = line.rfind('}').map_or(line, |close| line[close + 1..].trim_start());
    let value =
        if rest.is_empty() { line.split_once(' ').expect("checked above").1 } else { after };
    assert!(
        value == "+Inf" || value.parse::<f64>().is_ok(),
        "unparseable sample value {value:?} in: {line}"
    );
    Sample { name: name_part.to_string(), labels, value: value.to_string() }
}

#[test]
fn rendered_output_obeys_exposition_grammar() {
    // A registry messier than the golden one: unset gauges, zero counters,
    // escaped label values, empty and populated histograms.
    let r = golden_registry();
    let _never_set = r.gauge("discovery_silhouette", "Unset gauge must not render");
    r.gauge_with("adapt_buffer_occupancy", "Occupancy by class", "class", "a\"b").set(0.75);
    let _empty = r.histogram("adapt_refit_duration_seconds", "No refits yet", Unit::Seconds);
    let rendered = r.render();

    let mut current_family: Option<(String, String)> = None; // (name, kind)
    let mut help_seen: Vec<String> = Vec::new();
    // Per (family, label-set-minus-le): running bucket state.
    let mut last_bucket: Option<(String, u64)> = None;
    let mut inf_counts: Vec<(String, u64)> = Vec::new();

    for line in rendered.lines() {
        assert!(!line.is_empty(), "blank line in exposition output");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(valid_metric_name(name), "bad HELP name: {line}");
            assert!(!help.is_empty());
            assert!(!help_seen.contains(&name.to_string()), "duplicate HELP for {name}");
            help_seen.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE without kind");
            assert!(valid_metric_name(name), "bad TYPE name: {line}");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown TYPE kind: {line}");
            assert_eq!(
                help_seen.last().map(String::as_str),
                Some(name),
                "TYPE must directly follow its HELP line"
            );
            current_family = Some((name.to_string(), kind.to_string()));
            last_bucket = None;
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");

        let sample = parse_sample(line);
        let (family, kind) = current_family.as_ref().expect("sample before any TYPE line");
        match kind.as_str() {
            "counter" | "gauge" => {
                assert_eq!(&sample.name, family, "sample outside its family: {line}");
                assert!(sample.value != "+Inf", "non-bucket sample must be finite");
            }
            "histogram" => {
                let suffix = sample
                    .name
                    .strip_prefix(family.as_str())
                    .unwrap_or_else(|| panic!("histogram sample outside family: {line}"));
                let series_key = |labels: &[(String, String)]| {
                    labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .map(|(k, v)| format!("{k}={v};"))
                        .collect::<String>()
                };
                match suffix {
                    "_bucket" => {
                        let le = sample
                            .labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_else(|| panic!("bucket without le: {line}"));
                        let count: u64 = sample.value.parse().expect("bucket counts are integers");
                        let key = format!("{family}/{}", series_key(&sample.labels));
                        if let Some((prev_key, prev_count)) = &last_bucket {
                            if prev_key == &key {
                                assert!(
                                    count >= *prev_count,
                                    "bucket counts must be cumulative: {line}"
                                );
                            }
                        }
                        last_bucket = Some((key.clone(), count));
                        if le == "+Inf" {
                            inf_counts.push((key, count));
                        } else {
                            assert!(le.parse::<f64>().is_ok(), "non-numeric le: {line}");
                        }
                    }
                    "_count" => {
                        let count: u64 = sample.value.parse().expect("counts are integers");
                        let key = format!("{family}/{}", series_key(&sample.labels));
                        let inf = inf_counts
                            .iter()
                            .find(|(k, _)| k == &key)
                            .unwrap_or_else(|| panic!("_count without +Inf bucket: {line}"));
                        assert_eq!(inf.1, count, "+Inf bucket must equal _count: {line}");
                    }
                    "_sum" => {
                        assert!(sample.value.parse::<f64>().is_ok(), "bad _sum: {line}");
                    }
                    other => panic!("unexpected histogram suffix {other:?}: {line}"),
                }
            }
            _ => unreachable!(),
        }
    }
    assert!(!inf_counts.is_empty(), "histogram families must have produced +Inf buckets");
    assert!(
        !rendered.contains("discovery_silhouette"),
        "unset gauge leaked into exposition output"
    );
}
