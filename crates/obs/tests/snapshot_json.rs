//! JSON round-trip coverage for [`TelemetrySnapshot`].

use aging_obs::{Recorder, Registry, TelemetrySnapshot, Unit};

#[test]
fn snapshot_round_trips_through_json() {
    let r = Registry::new();
    r.counter("fleet_epochs_total", "Epochs").add(7);
    r.counter_with("adapt_bus_shed_checkpoints_total", "Shed", "class", "web").add(3);
    r.gauge_with("adapt_buffer_occupancy", "Occupancy", "class", "web").set(0.5);
    let h =
        r.histogram_with("adapt_refit_duration_seconds", "Refit", Unit::Seconds, "class", "web");
    h.record(1_000_000);
    h.record(2_000_000);

    let snap = r.snapshot();
    let json = serde_json::to_string(&snap).expect("serialises");
    let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back, snap);
    assert_eq!(back.counter("fleet_epochs_total", None), Some(7));
    assert_eq!(back.counter("adapt_bus_shed_checkpoints_total", Some("web")), Some(3));
    assert_eq!(back.gauge("adapt_buffer_occupancy", Some("web")), Some(0.5));
    let hist =
        back.histogram("adapt_refit_duration_seconds", Some("web")).expect("histogram survived");
    assert_eq!(hist.count, 2);
    assert!(hist.mean().expect("non-empty") > 0.0);
}

#[test]
fn empty_snapshot_round_trips_and_reports_empty() {
    let snap = Registry::new().snapshot();
    assert!(snap.is_empty());
    let json = serde_json::to_string(&snap).expect("serialises");
    let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back, snap);
}
