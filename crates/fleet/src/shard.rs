//! A shard: the slice of the fleet one worker thread owns.

use crate::config::FleetConfig;
use crate::instance::{Instance, Tick};
use aging_adapt::{CheckpointBus, ModelSnapshot};
use aging_ml::{FeatureMatrix, Regressor};
use aging_obs::{HistogramHandle, Recorder, Registry, Unit};

/// The model table one epoch serves from, resolved per class without any
/// per-epoch allocation: homogeneous bindings answer every class with the
/// one model, routed bindings index the worker's per-class snapshot pins.
/// Each entry also knows its model *generation* — labelled training data
/// carries it so the adaptation side can attribute every prediction error
/// to the generation that made it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EpochModels<'a> {
    /// Frozen and single-service adaptive runs: one model (and one
    /// generation — 0 for frozen runs) for all classes.
    Uniform {
        /// The model every class serves from this epoch.
        model: &'a dyn Regressor,
        /// Its generation (the pinned snapshot's for adaptive runs).
        generation: u64,
    },
    /// Routed runs: the worker's pins, indexed by fleet class.
    PerClass(&'a [ModelSnapshot]),
}

impl EpochModels<'_> {
    fn class(&self, class_idx: usize) -> &dyn Regressor {
        match self {
            EpochModels::Uniform { model, .. } => *model,
            EpochModels::PerClass(pins) => pins[class_idx].model.as_ref(),
        }
    }

    fn generation(&self, class_idx: usize) -> u64 {
        match self {
            EpochModels::Uniform { generation, .. } => *generation,
            EpochModels::PerClass(pins) => pins[class_idx].generation,
        }
    }
}

/// Per-shard epoch-phase timing instruments. One clock read per *phase*
/// per epoch when live, one untaken branch per phase when disabled — never
/// a clock read per checkpoint row.
#[derive(Debug, Default)]
pub(crate) struct ShardInstruments {
    /// `fleet_epoch_advance_seconds{shard}` — driving every instance one
    /// checkpoint forward.
    advance: HistogramHandle,
    /// `fleet_epoch_predict_seconds{shard}` — the batched
    /// `predict_matrix` resolution across all classes.
    predict: HistogramHandle,
    /// `fleet_epoch_publish_seconds{shard}` — draining labelled batches
    /// onto the adaptation bus.
    publish: HistogramHandle,
}

impl ShardInstruments {
    /// Resolves the three phase histograms for one shard id.
    pub(crate) fn resolve(registry: &Registry, shard: usize) -> Self {
        let shard = shard.to_string();
        ShardInstruments {
            advance: registry.histogram_with(
                "fleet_epoch_advance_seconds",
                "Per-epoch wall time advancing every instance of one shard by one checkpoint",
                Unit::Seconds,
                "shard",
                &shard,
            ),
            predict: registry.histogram_with(
                "fleet_epoch_predict_seconds",
                "Per-epoch wall time of the batched TTF matrix predictions of one shard",
                Unit::Seconds,
                "shard",
                &shard,
            ),
            publish: registry.histogram_with(
                "fleet_epoch_publish_seconds",
                "Per-epoch wall time publishing labelled checkpoint batches onto the bus",
                Unit::Seconds,
                "shard",
                &shard,
            ),
        }
    }
}

/// A worker's instances plus reusable per-epoch buffers.
///
/// Heterogeneous fleets serve different model generations to different
/// service classes, so the shard keeps one batch matrix per fleet class:
/// each epoch's pending rows land in their class's matrix and resolve
/// through that class's pinned model. A single-class fleet degenerates to
/// exactly the old one-matrix behaviour (same row order, same single
/// `predict_matrix` call per epoch).
#[derive(Debug)]
pub(crate) struct Shard {
    /// `(original fleet index, instance)` — the index restores spec order
    /// when per-instance reports are folded back together.
    pub(crate) instances: Vec<(usize, Instance)>,
    /// Flat row-major batches of this epoch's pending feature rows, one
    /// per fleet class; cleared and refilled every epoch, so steady-state
    /// epochs perform no per-row allocations at all.
    matrices: Vec<FeatureMatrix>,
    /// Per class, which instance slots appended a row this epoch (row `i`
    /// of `matrices[c]` belongs to `pending[c][i]`).
    pending: Vec<Vec<usize>>,
    /// Feature arity, kept so [`Shard::ensure_classes`] can size the
    /// matrices of dynamically discovered classes.
    n_features: usize,
    /// Producer handle on the adaptation bus; `None` for frozen runs.
    bus: Option<CheckpointBus>,
    /// Epoch-phase timing; disabled handles when no telemetry is attached.
    instruments: ShardInstruments,
}

impl Shard {
    pub(crate) fn new(
        instances: Vec<(usize, Instance)>,
        n_features: usize,
        n_classes: usize,
        bus: Option<CheckpointBus>,
    ) -> Self {
        let capacity = instances.len();
        Shard {
            instances,
            matrices: (0..n_classes)
                .map(|_| FeatureMatrix::with_capacity(n_features, capacity))
                .collect(),
            pending: (0..n_classes).map(|_| Vec::with_capacity(capacity)).collect(),
            n_features,
            bus,
            instruments: ShardInstruments::default(),
        }
    }

    /// Attaches epoch-phase timing instruments (resolved once per shard,
    /// before the worker pool starts).
    pub(crate) fn set_instruments(&mut self, instruments: ShardInstruments) {
        self.instruments = instruments;
    }

    /// Grows the per-class batch buffers to `n_classes` (class discovery
    /// registers classes mid-run; the table is append-only, so existing
    /// matrices keep their slots). Called at epoch boundaries only.
    pub(crate) fn ensure_classes(&mut self, n_classes: usize) {
        let capacity = self.instances.len();
        while self.matrices.len() < n_classes {
            self.matrices.push(FeatureMatrix::with_capacity(self.n_features, capacity));
            self.pending.push(Vec::with_capacity(capacity));
        }
    }

    /// Admits a joining instance (elastic runs): slot assignment is
    /// append-only, so existing pending-row bookkeeping stays valid.
    /// Called at the top of a fleet epoch only, before any row of that
    /// epoch is batched.
    pub(crate) fn admit(&mut self, fleet_index: usize, instance: Instance) {
        self.instances.push((fleet_index, instance));
    }

    /// Force-retires the instance with the given fleet index (scripted
    /// churn). Returns whether a live instance was actually retired.
    pub(crate) fn force_retire(&mut self, fleet_index: usize, fleet_epoch: u64) -> bool {
        self.instances
            .iter_mut()
            .find(|(idx, _)| *idx == fleet_index)
            .is_some_and(|(_, instance)| instance.force_retire(fleet_epoch))
    }

    /// Drives every instance one checkpoint forward, then resolves all
    /// pending TTF predictions with one batched inference per service
    /// class over that class's model. Returns how many instances are
    /// still live.
    ///
    /// `threshold_overrides` carries each fleet class's effective
    /// rejuvenation threshold for this epoch (read from the class's model
    /// service at the epoch boundary, like the model pins); `None` entries
    /// leave the spec-configured thresholds in force. `fleet_epoch` is the
    /// fleet epoch being driven — instances that cross their horizon this
    /// tick record it as their retirement epoch.
    pub(crate) fn epoch(
        &mut self,
        models: EpochModels<'_>,
        threshold_overrides: &[Option<f64>],
        config: &FleetConfig,
        fleet_epoch: u64,
    ) -> usize {
        for matrix in &mut self.matrices {
            matrix.clear();
        }
        for pending in &mut self.pending {
            pending.clear();
        }
        let collect = self.bus.is_some();
        let mut live = 0usize;
        let advance_span = self.instruments.advance.span();
        for (slot, (_, instance)) in self.instances.iter_mut().enumerate() {
            let class = instance.class_idx();
            match instance.advance(config, &mut self.matrices[class], collect, fleet_epoch) {
                Tick::Retired => {}
                Tick::Advanced => live += 1,
                Tick::NeedsPrediction => {
                    live += 1;
                    self.pending[class].push(slot);
                }
            }
        }
        advance_span.finish();
        let predict_span = self.instruments.predict.span();
        for (class, matrix) in self.matrices.iter().enumerate() {
            if matrix.is_empty() {
                continue;
            }
            let predictions = models.class(class).predict_matrix(matrix);
            debug_assert_eq!(predictions.len(), self.pending[class].len());
            let threshold_override = threshold_overrides.get(class).copied().flatten();
            let generation = models.generation(class);
            for (row_idx, (&slot, &prediction)) in
                self.pending[class].iter().zip(&predictions).enumerate()
            {
                self.instances[slot].1.apply_prediction(
                    prediction,
                    matrix.row(row_idx),
                    config,
                    collect,
                    threshold_override,
                    generation,
                );
            }
        }
        predict_span.finish();
        if let Some(bus) = &self.bus {
            let publish_span = self.instruments.publish.span();
            for (_, instance) in &mut self.instances {
                if let Some(batch) = instance.take_labelled() {
                    // A `false` return means the adaptation service is
                    // gone; the fleet keeps operating on its pinned model.
                    let _ = bus.publish(batch);
                }
            }
            publish_span.finish();
        }
        live
    }
}
