//! A shard: the slice of the fleet one worker thread owns.

use crate::config::FleetConfig;
use crate::instance::{Instance, Tick};
use aging_adapt::CheckpointBus;
use aging_ml::{FeatureMatrix, Regressor};

/// A worker's instances plus reusable per-epoch buffers.
#[derive(Debug)]
pub(crate) struct Shard {
    /// `(original fleet index, instance)` — the index restores spec order
    /// when per-instance reports are folded back together.
    pub(crate) instances: Vec<(usize, Instance)>,
    /// Flat row-major batch of this epoch's pending feature rows: the
    /// buffer is cleared and refilled every epoch, so steady-state epochs
    /// perform no per-row allocations at all.
    matrix: FeatureMatrix,
    pending: Vec<usize>,
    /// Producer handle on the adaptation bus; `None` for frozen runs.
    bus: Option<CheckpointBus>,
}

impl Shard {
    pub(crate) fn new(
        instances: Vec<(usize, Instance)>,
        n_features: usize,
        bus: Option<CheckpointBus>,
    ) -> Self {
        let capacity = instances.len();
        Shard {
            instances,
            matrix: FeatureMatrix::with_capacity(n_features, capacity),
            pending: Vec::with_capacity(capacity),
            bus,
        }
    }

    /// Drives every instance one checkpoint forward, then resolves all
    /// pending TTF predictions through a single batched inference over the
    /// shared model. Returns how many instances are still live.
    pub(crate) fn epoch(&mut self, model: &dyn Regressor, config: &FleetConfig) -> usize {
        self.matrix.clear();
        self.pending.clear();
        let collect = self.bus.is_some();
        let mut live = 0usize;
        for (slot, (_, instance)) in self.instances.iter_mut().enumerate() {
            match instance.advance(config, &mut self.matrix, collect) {
                Tick::Retired => {}
                Tick::Advanced => live += 1,
                Tick::NeedsPrediction => {
                    live += 1;
                    self.pending.push(slot);
                }
            }
        }
        if !self.matrix.is_empty() {
            let predictions = model.predict_matrix(&self.matrix);
            debug_assert_eq!(predictions.len(), self.pending.len());
            for (row_idx, (&slot, &prediction)) in self.pending.iter().zip(&predictions).enumerate()
            {
                self.instances[slot].1.apply_prediction(
                    prediction,
                    self.matrix.row(row_idx),
                    config,
                    collect,
                );
            }
        }
        if let Some(bus) = &self.bus {
            for (_, instance) in &mut self.instances {
                if let Some(batch) = instance.take_labelled() {
                    // A `false` return means the adaptation service is
                    // gone; the fleet keeps operating on its pinned model.
                    let _ = bus.publish(batch);
                }
            }
        }
        live
    }
}
