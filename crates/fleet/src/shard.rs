//! A shard: the slice of the fleet one worker thread owns.

use crate::config::FleetConfig;
use crate::instance::{Instance, Tick};
use aging_ml::Regressor;
use aging_monitor::FeatureSet;

/// A worker's instances plus reusable per-epoch buffers.
#[derive(Debug)]
pub(crate) struct Shard {
    /// `(original fleet index, instance)` — the index restores spec order
    /// when per-instance reports are folded back together.
    pub(crate) instances: Vec<(usize, Instance)>,
    rows: Vec<Vec<f64>>,
    pending: Vec<usize>,
}

impl Shard {
    pub(crate) fn new(instances: Vec<(usize, Instance)>) -> Self {
        Shard { instances, rows: Vec::new(), pending: Vec::new() }
    }

    /// Drives every instance one checkpoint forward, then resolves all
    /// pending TTF predictions through a single batched inference over the
    /// shared model. Returns how many instances are still live.
    pub(crate) fn epoch(
        &mut self,
        model: &dyn Regressor,
        features: &FeatureSet,
        config: &FleetConfig,
    ) -> usize {
        self.rows.clear();
        self.pending.clear();
        let mut live = 0usize;
        for (slot, (_, instance)) in self.instances.iter_mut().enumerate() {
            match instance.advance(config, features) {
                Tick::Retired => {}
                Tick::Advanced => live += 1,
                Tick::NeedsPrediction(row) => {
                    live += 1;
                    self.rows.push(row);
                    self.pending.push(slot);
                }
            }
        }
        if !self.rows.is_empty() {
            let predictions = model.predict_batch(&self.rows);
            debug_assert_eq!(predictions.len(), self.pending.len());
            for (&slot, &prediction) in self.pending.iter().zip(&predictions) {
                self.instances[slot].1.apply_prediction(prediction, config);
            }
        }
        live
    }
}
