//! [`EpochStep`]: the reusable unit of per-epoch work.
//!
//! One `EpochStep` owns a shard worker's epoch-boundary state — model
//! snapshot pins, the discovered-class table view, effective threshold
//! overrides — and drives one shard through one fleet epoch:
//! refresh pins/classes → build the epoch's model table → advance every
//! instance, batch-predict per class, publish labelled checkpoints.
//!
//! Both engines drive the *same* `EpochStep`: the lock-step barrier loop
//! (`crate::engine`) and the event-driven scheduler
//! (`crate::scheduler`). That shared unit is what makes the determinism
//! oracle structural — on a churn-free spec the two engines execute
//! identical per-shard work in identical order, so their reports are
//! bit-identical by construction, not by coincidence.

use crate::config::FleetConfig;
use crate::engine::{emit_swaps, DiscoveryRuntime, ModelBinding};
use crate::shard::{EpochModels, Shard};
use aging_adapt::{ModelService, ModelSnapshot, ServiceClass};
use aging_obs::TraceHandle;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One shard worker's per-epoch state and the epoch driver itself.
pub(crate) struct EpochStep {
    shard_idx: usize,
    /// Adaptive/routed/discovered runs pin one model snapshot per class
    /// per epoch: pins refresh at epoch boundaries only, and only when
    /// the generation counter moved, so a publish mid-epoch never splits
    /// a batch across two models.
    pins: Vec<ModelSnapshot>,
    /// Discovered runs: this worker's view of the class table, re-synced
    /// when the runtime version moves.
    services: Vec<Arc<ModelService>>,
    /// Class names aligned with `services`/`pins` — the labels this
    /// shard's swap-apply events carry.
    class_names: Vec<ServiceClass>,
    seen_version: u64,
    /// Effective rejuvenation thresholds, same epoch-boundary discipline
    /// as the pins: read once per class per epoch from the class's model
    /// service, so a self-tuning policy's update lands at an epoch edge,
    /// never mid-batch. All `None` (the fixed-policy state) leaves the
    /// spec thresholds in force — bit-identical to the pre-policy engine.
    thresholds: Vec<Option<f64>>,
    trace: TraceHandle,
}

impl EpochStep {
    pub(crate) fn new(
        binding: &ModelBinding<'_>,
        n_classes: usize,
        shard_idx: usize,
        trace: TraceHandle,
    ) -> Self {
        let (pins, services, class_names) = match binding {
            ModelBinding::Frozen(_) => (Vec::new(), Vec::new(), Vec::new()),
            ModelBinding::Adaptive(service) => (vec![service.snapshot()], Vec::new(), Vec::new()),
            ModelBinding::Routed(services) => {
                (services.iter().map(|s| s.snapshot()).collect(), Vec::new(), Vec::new())
            }
            ModelBinding::Discovered(runtime) => {
                let table = runtime.classes.read().expect("class table poisoned");
                (
                    table.iter().map(|(_, s)| s.snapshot()).collect(),
                    table.iter().map(|(_, s)| Arc::clone(s)).collect(),
                    table.iter().map(|(name, _)| name.clone()).collect(),
                )
            }
        };
        EpochStep {
            shard_idx,
            pins,
            services,
            class_names,
            seen_version: 0,
            thresholds: vec![None; n_classes],
            trace,
        }
    }

    /// Epoch-boundary refresh: re-pin moved model generations (emitting
    /// the skipped-generation swap events), re-read threshold overrides,
    /// and — for discovered runs — apply the leader's latest partition to
    /// this shard's instances.
    fn refresh(
        &mut self,
        shard: &mut Shard,
        binding: &ModelBinding<'_>,
        classes: &[ServiceClass],
        default_class: &ServiceClass,
    ) {
        let shard_idx = self.shard_idx as u32;
        match binding {
            ModelBinding::Frozen(_) => {}
            ModelBinding::Adaptive(service) => {
                let before = self.pins[0].generation;
                if service.refresh(&mut self.pins[0]) {
                    emit_swaps(
                        &self.trace,
                        default_class.as_str(),
                        shard_idx,
                        before,
                        self.pins[0].generation,
                        service,
                    );
                }
                // One service serves every class.
                self.thresholds.fill(service.rejuvenation_threshold_secs());
            }
            ModelBinding::Routed(services) => {
                for (class_idx, ((service, pin), threshold)) in
                    services.iter().zip(&mut self.pins).zip(&mut self.thresholds).enumerate()
                {
                    let before = pin.generation;
                    if service.refresh(pin) {
                        emit_swaps(
                            &self.trace,
                            classes[class_idx].as_str(),
                            shard_idx,
                            before,
                            pin.generation,
                            service,
                        );
                    }
                    *threshold = service.rejuvenation_threshold_secs();
                }
            }
            ModelBinding::Discovered(runtime) => {
                // Apply the leader's latest partition — new classes,
                // retirements, re-routed instances — exactly at this
                // epoch boundary.
                let version = runtime.version.load(Ordering::Acquire);
                if version != self.seen_version {
                    self.seen_version = version;
                    let table = runtime.classes.read().expect("class table poisoned");
                    for (orig, instance) in shard.instances.iter_mut() {
                        let id = runtime.assignment[*orig].load(Ordering::Relaxed);
                        instance.set_class(id, table[id].0.clone());
                    }
                    while self.services.len() < table.len() {
                        let (name, service) = &table[self.services.len()];
                        self.pins.push(service.snapshot());
                        self.class_names.push(name.clone());
                        self.services.push(Arc::clone(service));
                    }
                    drop(table);
                    shard.ensure_classes(self.services.len());
                    self.thresholds.resize(self.services.len(), None);
                }
                for (class_idx, ((service, pin), threshold)) in
                    self.services.iter().zip(&mut self.pins).zip(&mut self.thresholds).enumerate()
                {
                    let before = pin.generation;
                    if service.refresh(pin) {
                        emit_swaps(
                            &self.trace,
                            self.class_names[class_idx].as_str(),
                            shard_idx,
                            before,
                            pin.generation,
                            service,
                        );
                    }
                    *threshold = service.rejuvenation_threshold_secs();
                }
            }
        }
    }

    /// Drives one shard through one fleet epoch: boundary refresh, then
    /// advance/predict/publish. Returns the shard's live-instance count
    /// after the epoch. The caller wraps this in `catch_unwind` — a
    /// panicking model or simulator must not strand the engine.
    pub(crate) fn run(
        &mut self,
        shard: &mut Shard,
        binding: &ModelBinding<'_>,
        classes: &[ServiceClass],
        default_class: &ServiceClass,
        config: &FleetConfig,
        epoch: u64,
    ) -> usize {
        self.refresh(shard, binding, classes, default_class);
        // The model table this epoch serves from — borrows of `pins`, no
        // per-epoch allocation.
        let models = match binding {
            ModelBinding::Frozen(model) => EpochModels::Uniform { model: *model, generation: 0 },
            ModelBinding::Adaptive(_) => EpochModels::Uniform {
                model: self.pins[0].model.as_ref(),
                generation: self.pins[0].generation,
            },
            ModelBinding::Routed(_) | ModelBinding::Discovered(_) => {
                EpochModels::PerClass(&self.pins)
            }
        };
        shard.epoch(models, &self.thresholds, config, epoch)
    }

    /// Whether completing `epoch` lands on a discovery reassessment
    /// boundary (signatures must be published before the leader's next
    /// step).
    pub(crate) fn reassess_after(binding: &ModelBinding<'_>, epoch: u64) -> bool {
        match binding {
            ModelBinding::Discovered(runtime) => {
                (epoch + 1) % runtime.setup.reassess_every_epochs == 0
            }
            _ => false,
        }
    }

    /// Publishes this shard's instance signatures into the runtime's
    /// slots, so the leader's next evaluation sees every instance's
    /// latest stream.
    pub(crate) fn publish_signatures(shard: &Shard, runtime: &DiscoveryRuntime<'_>) {
        for (orig, instance) in shard.instances.iter() {
            *runtime.signatures[*orig].lock().expect("signature slot poisoned") =
                instance.signature();
        }
    }
}
