//! Fleet configuration and per-instance specifications.

use aging_adapt::discovery::{DiscoveryConfig, SignatureConfig};
use aging_adapt::{ClassSpec, RouterConfig, ServiceClass};
use aging_core::{RejuvenationConfig, RejuvenationPolicy};
use aging_testbed::Scenario;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fleet-level workload change: from the given operating time onwards,
/// every *new* service epoch of the instance runs the shifted scenario
/// instead of the original one.
///
/// This models a production regime change (a traffic migration, a deploy
/// with a different leak signature) that happens while the fleet operates
/// — the situation where a frozen model goes stale and the paper's
/// adaptive retraining pays off. The shift applies at service-epoch
/// boundaries because a restart is when a deployment picks up its new
/// configuration; an epoch in flight keeps its scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadShift {
    /// Operating time (seconds of instance `elapsed` time) after which new
    /// service epochs use the shifted scenario.
    pub after_secs: f64,
    /// The scenario that takes over.
    pub scenario: Scenario,
}

/// One simulated deployment the fleet operates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Identifier carried into the per-instance report.
    pub name: String,
    /// The workload/fault scenario this deployment runs.
    pub scenario: Scenario,
    /// Restart policy applied to this deployment.
    pub policy: RejuvenationPolicy,
    /// Base RNG seed; service epoch `e` runs under `seed + e`, matching
    /// `aging_core::rejuvenation::evaluate_policy`.
    pub seed: u64,
    /// Optional mid-run workload change (see [`WorkloadShift`]).
    pub shift: Option<WorkloadShift>,
    /// Which adaptation domain this deployment belongs to. Homogeneous
    /// fleets leave the default; heterogeneous fleets group instances by
    /// aging signature so [`crate::Fleet::run_routed`] serves and retrains
    /// each class with its own model.
    pub class: ServiceClass,
}

impl InstanceSpec {
    /// A spec with no workload shift, in the default service class.
    pub fn new(
        name: impl Into<String>,
        scenario: Scenario,
        policy: RejuvenationPolicy,
        seed: u64,
    ) -> Self {
        InstanceSpec {
            name: name.into(),
            scenario,
            policy,
            seed,
            shift: None,
            class: ServiceClass::default(),
        }
    }

    /// Moves the spec into `class` (builder-style).
    pub fn with_class(mut self, class: impl Into<ServiceClass>) -> Self {
        self.class = class.into();
        self
    }
}

/// Fleet-wide operating parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Worker threads the instances are sharded across. Capped at the
    /// instance count at run time; at least 1.
    pub shards: usize,
    /// Downtime costs, horizon and predictive warm-up — shared with the
    /// single-instance rejuvenation study so a 1-instance fleet reproduces
    /// it exactly.
    pub rejuvenation: RejuvenationConfig,
    /// When an instance is proactively restarted, a frozen-rate fork of its
    /// simulator decides whether a real crash was imminent within this many
    /// simulated seconds (counted as a crash avoided). `0.0` disables the
    /// counterfactual check (and `crashes_avoided` stays 0).
    pub counterfactual_horizon_secs: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            rejuvenation: RejuvenationConfig::default(),
            counterfactual_horizon_secs: 3600.0,
        }
    }
}

/// Everything a [`crate::Fleet::run_discovered`] run needs besides the
/// fleet itself: how each discovered class adapts, how signatures are
/// summarised, how the partition is re-evaluated, and how often.
///
/// The fleet starts with **zero operator-assigned classes**: every
/// instance begins in the seed class `discovered-0`, served by
/// `template.initial`. At every reassessment boundary the discovery
/// engine clusters the instances' aging signatures; new classes spawn a
/// fresh adaptation pipeline from `template` (inheriting the nearest
/// centroid's currently published model as generation 0), and retired
/// classes drain their training buffer into their merge target.
#[derive(Debug, Clone)]
pub struct DiscoverySetup {
    /// Learner, adaptation config and threshold policy every discovered
    /// class runs with; `template.initial` seeds `discovered-0`.
    pub template: ClassSpec,
    /// Router-wide tuning (retrainer pool, bus capacity).
    pub router: RouterConfig,
    /// Partition engine tuning (split/merge gates, seed).
    pub discovery: DiscoveryConfig,
    /// Per-instance aging-signature tuning.
    pub signature: SignatureConfig,
    /// Fleet epochs between partition re-evaluations. Assignments only
    /// change at these boundaries — an instance's class is pinned within
    /// an epoch exactly like its model snapshot.
    pub reassess_every_epochs: u64,
}

impl DiscoverySetup {
    /// A setup with the default discovery/signature/router tuning and a
    /// reassessment every 240 fleet epochs (one simulated hour of 15 s
    /// checkpoints).
    pub fn new(template: ClassSpec) -> Self {
        DiscoverySetup {
            template,
            router: RouterConfig::default(),
            discovery: DiscoveryConfig::default(),
            signature: SignatureConfig::default(),
            reassess_every_epochs: 240,
        }
    }
}

pub(crate) fn validate_discovery(setup: &DiscoverySetup) -> Result<(), FleetError> {
    if setup.reassess_every_epochs == 0 {
        return Err(FleetError::InvalidParameter(
            "discovery reassessment interval must be at least one epoch".into(),
        ));
    }
    Ok(())
}

/// Error raised when assembling or running a fleet.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum FleetError {
    /// The fleet has no instances.
    NoInstances,
    /// A specification or configuration value is invalid.
    InvalidParameter(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoInstances => write!(f, "fleet has no instances"),
            FleetError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Validates a spec the way `evaluate_policy` validates its inputs.
pub(crate) fn validate_spec(spec: &InstanceSpec) -> Result<(), FleetError> {
    if let Some(shift) = &spec.shift {
        if !shift.after_secs.is_finite() || shift.after_secs < 0.0 {
            return Err(FleetError::InvalidParameter(format!(
                "instance `{}`: shift time must be finite and non-negative",
                spec.name
            )));
        }
    }
    match spec.policy {
        RejuvenationPolicy::Reactive => Ok(()),
        RejuvenationPolicy::TimeBased { interval_secs } => {
            if interval_secs <= 0.0 {
                return Err(FleetError::InvalidParameter(format!(
                    "instance `{}`: interval must be positive",
                    spec.name
                )));
            }
            Ok(())
        }
        RejuvenationPolicy::Predictive { threshold_secs, consecutive } => {
            if threshold_secs <= 0.0 || consecutive == 0 {
                return Err(FleetError::InvalidParameter(format!(
                    "instance `{}`: predictive policy needs positive threshold and \
                     consecutive count",
                    spec.name
                )));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

pub(crate) fn validate_config(config: &FleetConfig) -> Result<(), FleetError> {
    if config.shards == 0 {
        return Err(FleetError::InvalidParameter("shards must be at least 1".into()));
    }
    if config.rejuvenation.horizon_secs <= 0.0 {
        return Err(FleetError::InvalidParameter("horizon must be positive".into()));
    }
    if config.counterfactual_horizon_secs < 0.0 {
        return Err(FleetError::InvalidParameter(
            "counterfactual horizon must be non-negative".into(),
        ));
    }
    Ok(())
}
