//! Concurrent fleet-scale aging prediction and rejuvenation.
//!
//! The paper picked M5P because "it has low training and prediction costs
//! and we will eventually want on-line processing" — and the seed's
//! on-line loop (`aging_core::OnlineTtfPredictor` +
//! `aging_core::rejuvenation::evaluate_policy`) operates exactly **one**
//! server at a time. This crate scales that loop to production shape:
//! a [`Fleet`] operates hundreds of independently-seeded simulated
//! deployments ([`InstanceSpec`]) under one shared trained model.
//!
//! # Architecture
//!
//! - Instances are round-robined across a fixed pool of `shards` worker
//!   threads (one [`std::thread`] per shard, no per-epoch respawning).
//! - The fleet advances in **lock-step epochs**: every live instance
//!   consumes one 15-second monitoring checkpoint per epoch, and the
//!   workers synchronise on a barrier before the next epoch begins.
//! - Within a shard, every checkpoint that needs a time-to-failure
//!   estimate is projected straight into a flat row-major
//!   [`aging_ml::FeatureMatrix`] (reused across epochs — no per-row
//!   allocations) and resolved through one
//!   [`aging_ml::Regressor::predict_matrix`] call — the shared model is
//!   `Sync`, so all shards read it concurrently without cloning it.
//! - Each instance applies its own `RejuvenationPolicy` with the exact
//!   accounting of the single-instance study: a 1-instance fleet
//!   reproduces `evaluate_policy`'s `RejuvenationReport` field for field.
//! - Per-instance outcomes fold into a [`FleetReport`]: availability,
//!   crashes suffered/avoided (the latter via the paper's frozen-rate
//!   fork as counterfactual), lost work, restart counts, retrospective
//!   TTF-prediction error, and the engine's wall-clock
//!   checkpoints/second throughput.
//!
//! # Adaptation
//!
//! [`Fleet::run_adaptive`] connects the same epoch loop to an
//! [`aging_adapt::AdaptiveService`]: completed crash epochs are labelled
//! retrospectively and streamed onto the service's checkpoint bus, the
//! service retrains on drift and publishes new model generations, and
//! every worker re-pins its model snapshot at the next epoch boundary —
//! retraining never pauses the pool. A fleet-level [`WorkloadShift`] can
//! move instances to a different scenario mid-run to exercise exactly the
//! dynamic-workload regime the paper's adaptive claim is about.
//!
//! Heterogeneous fleets go through [`Fleet::run_routed`] instead: specs
//! carry a [`ServiceClass`], shards keep one batch matrix per class and
//! tag outgoing checkpoints with it, and an
//! [`aging_adapt::AdaptiveRouter`] serves/retrains one model per class
//! over a shared retrainer pool — a workload shift in one class adapts
//! that class alone.
//!
//! # Elasticity
//!
//! [`Fleet::with_scheduler`] swaps the barrier for an event-driven epoch
//! scheduler: shards become tasks on a ready queue, each runs its next
//! epoch the moment it is eligible, and the only global cuts left are
//! leader boundaries (discovery reassessment, autoscale evaluation). A
//! [`Fleet::with_churn`] plan makes membership dynamic — scripted joins
//! and retires plus an optional [`AutoscaleRule`] floor — with every
//! change journalled, traced, and folded into the report's
//! [`ChurnStats`]. The lock-step engine stays as the determinism oracle:
//! on a churn-free spec the scheduled run reproduces its report
//! bit-exactly (asserted in `tests/elastic.rs`).
//!
//! # Example
//!
//! ```no_run
//! use aging_core::{AgingPredictor, RejuvenationPolicy};
//! use aging_fleet::{Fleet, FleetConfig};
//! use aging_monitor::FeatureSet;
//! use aging_testbed::{MemLeakSpec, Scenario};
//!
//! let scenario = Scenario::builder("leaky")
//!     .emulated_browsers(100)
//!     .memory_leak(MemLeakSpec::new(15))
//!     .run_to_crash()
//!     .build();
//! let predictor = AgingPredictor::train(&[scenario.clone()], FeatureSet::exp42(), 7)?;
//! let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
//! let fleet = Fleet::uniform(&scenario, policy, 100, 1000, FleetConfig::default())?;
//! let report = fleet.run_with_predictor(&predictor);
//! println!("{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod churn;
mod config;
mod engine;
mod instance;
mod report;
mod scheduler;
mod shard;
mod step;

pub use churn::{AutoscaleRule, ChurnPlan, ScheduledJoin, ScheduledRetire};
pub use config::{DiscoverySetup, FleetConfig, FleetError, InstanceSpec, WorkloadShift};
pub use engine::Fleet;
pub use instance::Instance;
pub use report::{
    ChurnStats, DiscoveredClass, DiscoveryReport, FleetReport, FleetTiming, InstanceReport,
    JournalStats, SchedulerStats,
};
pub use scheduler::SchedulerConfig;

// The class vocabulary of heterogeneous fleets lives in `aging_adapt`
// (checkpoint batches carry it); re-exported so fleet callers need not
// name that crate.
pub use aging_adapt::ServiceClass;

// The policy-search surface a tuned fleet needs: the tuner handed to
// `Fleet::with_tuner` and the stats type `FleetReport::tuning` carries.
pub use aging_tune::{FleetTuner, TuneConfig, TuneStats, TunedClass};

#[cfg(test)]
mod tests {
    use super::*;
    use aging_core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
    use aging_monitor::FeatureSet;
    use aging_testbed::{MemLeakSpec, Scenario};

    fn crashing_scenario() -> Scenario {
        Scenario::builder("leaky")
            .emulated_browsers(100)
            .memory_leak(MemLeakSpec::new(15))
            .run_to_crash()
            .build()
    }

    fn short_config(shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            rejuvenation: RejuvenationConfig { horizon_secs: 2.0 * 3600.0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(matches!(
            Fleet::new(Vec::new(), FleetConfig::default()),
            Err(FleetError::NoInstances)
        ));
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let spec = |policy| InstanceSpec::new("x", crashing_scenario(), policy, 1);
        assert!(Fleet::new(
            vec![spec(RejuvenationPolicy::TimeBased { interval_secs: 0.0 })],
            FleetConfig::default(),
        )
        .is_err());
        assert!(Fleet::new(
            vec![spec(RejuvenationPolicy::Predictive { threshold_secs: 300.0, consecutive: 0 })],
            FleetConfig::default(),
        )
        .is_err());
        assert!(Fleet::new(
            vec![spec(RejuvenationPolicy::Reactive)],
            FleetConfig { shards: 0, ..Default::default() },
        )
        .is_err());
        let bad_horizon = FleetConfig {
            rejuvenation: RejuvenationConfig { horizon_secs: 0.0, ..Default::default() },
            ..Default::default()
        };
        assert!(Fleet::new(vec![spec(RejuvenationPolicy::Reactive)], bad_horizon).is_err());
    }

    #[test]
    fn reactive_fleet_suffers_crashes_on_every_instance() {
        let fleet = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            6,
            10,
            short_config(3),
        )
        .unwrap();
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 99).unwrap();
        let report = fleet.run_with_predictor(&predictor);
        assert_eq!(report.instances.len(), 6);
        assert_eq!(report.shards, 3);
        assert_eq!(report.rejuvenations, 0);
        for inst in &report.instances {
            assert!(inst.crashes >= 1, "leaky instance must crash: {inst:?}");
            assert!(inst.availability < 1.0);
            assert!(inst.service_epochs >= inst.crashes, "{inst:?}");
        }
        assert!(report.epochs > 0);
        assert_eq!(report.checkpoints, report.instances.iter().map(|i| i.checkpoints).sum::<u64>());
    }

    #[test]
    fn predictive_fleet_avoids_crashes_and_counts_counterfactuals() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 77).unwrap();
        let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
        let predictive = Fleet::uniform(&crashing_scenario(), policy, 4, 500, short_config(2))
            .unwrap()
            .run_with_predictor(&predictor);
        let reactive = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            4,
            500,
            short_config(2),
        )
        .unwrap()
        .run_with_predictor(&predictor);
        assert!(
            predictive.crashes < reactive.crashes,
            "prediction must pre-empt crashes: {} vs {}",
            predictive.crashes,
            reactive.crashes
        );
        assert!(predictive.availability > reactive.availability);
        assert!(predictive.rejuvenations > 0);
        assert!(
            predictive.crashes_avoided > 0,
            "proactive restarts of a leaky server should pre-empt real crashes: {predictive}"
        );
        assert!(predictive.crashes_avoided <= predictive.rejuvenations);
    }

    #[test]
    fn disabled_counterfactual_reports_zero_avoided() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 77).unwrap();
        let mut config = short_config(2);
        config.counterfactual_horizon_secs = 0.0;
        let report = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::TimeBased { interval_secs: 900.0 },
            3,
            42,
            config,
        )
        .unwrap()
        .run_with_predictor(&predictor);
        assert!(report.rejuvenations > 0);
        assert_eq!(report.crashes_avoided, 0);
    }

    #[test]
    fn report_orders_instances_by_spec_regardless_of_sharding() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 5).unwrap();
        for shards in [1, 2, 5] {
            let fleet = Fleet::uniform(
                &crashing_scenario(),
                RejuvenationPolicy::Reactive,
                5,
                0,
                short_config(shards),
            )
            .unwrap();
            let report = fleet.run_with_predictor(&predictor);
            let names: Vec<&str> = report.instances.iter().map(|i| i.name.as_str()).collect();
            assert_eq!(
                names,
                vec!["leaky-0000", "leaky-0001", "leaky-0002", "leaky-0003", "leaky-0004"],
                "shards={shards}"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A model assertion (e.g. feature-arity mismatch) fires inside one
        // worker thread; the barrier protocol must let every worker drain
        // out and the payload reach the caller, not strand the siblings.
        #[derive(Debug)]
        struct PanicModel;

        impl aging_ml::Regressor for PanicModel {
            fn predict(&self, _x: &[f64]) -> f64 {
                panic!("model rejected the feature row");
            }

            fn name(&self) -> &'static str {
                "Panic"
            }
        }

        let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
        let fleet = Fleet::uniform(&crashing_scenario(), policy, 4, 1, short_config(2)).unwrap();
        let features = FeatureSet::exp42();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fleet.run(&PanicModel, &features)
        }));
        let payload = outcome.expect_err("the worker panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("model rejected"), "unexpected payload: {message}");
    }

    #[test]
    fn telemetry_snapshot_lands_in_the_report() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 5).unwrap();
        let registry = aging_obs::Registry::shared();
        let report = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            4,
            9,
            short_config(2),
        )
        .unwrap()
        .with_telemetry(std::sync::Arc::clone(&registry))
        .run_with_predictor(&predictor);
        let telemetry = report.telemetry.as_ref().expect("registry attached");
        assert_eq!(telemetry.counter("fleet_epochs_total", None), Some(report.epochs));
        let waits = telemetry.histogram_series("fleet_barrier_wait_seconds");
        assert_eq!(waits.len(), 2, "one barrier-wait series per shard");
        assert!(waits.iter().all(|h| h.count > 0), "every shard waits every epoch");
        assert!(telemetry.histogram("fleet_epoch_advance_seconds", Some("0")).is_some());
        assert!(telemetry.histogram("fleet_epoch_predict_seconds", Some("1")).is_some());
        let timing = report.shard_timing_summary().expect("waits recorded");
        assert!(timing.contains("slowest shard"), "{timing}");
        assert!(timing.contains("p99 wait"), "tail latency must be reported: {timing}");
        assert!(report.to_string().contains("shard timing"), "{report}");

        // Untelemetered runs carry no snapshot (and pay no clock reads).
        let bare = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            4,
            9,
            short_config(2),
        )
        .unwrap()
        .run_with_predictor(&predictor);
        assert!(bare.telemetry.is_none());
    }

    #[test]
    fn display_summarises_the_fleet() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 5).unwrap();
        let report = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            2,
            3,
            short_config(2),
        )
        .unwrap()
        .run_with_predictor(&predictor);
        let text = report.to_string();
        assert!(text.contains("2 instances"), "{text}");
        assert!(text.contains("checkpoints/s"), "{text}");
    }

    /// A panic inside the barrier leader's discovery window must dump the
    /// flight recorder exactly once (shared gate with the worker panic
    /// path) and still rethrow the payload to the caller.
    #[test]
    fn discovery_step_panic_dumps_flight_recorder_once() {
        use aging_adapt::ClassSpec;
        use aging_ml::LearnerKind;
        use aging_obs::FlightRecorder;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::Ordering;
        use std::sync::Arc;

        let features = FeatureSet::exp42();
        let initial = Arc::new(
            AgingPredictor::train(&[crashing_scenario()], features.clone(), 11)
                .unwrap()
                .model()
                .clone(),
        );
        let template = ClassSpec::builder(LearnerKind::LinReg.learner(), initial).build();
        let setup = DiscoverySetup { reassess_every_epochs: 1, ..DiscoverySetup::new(template) };
        let recorder = Arc::new(FlightRecorder::with_capacity(128));
        let fleet = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            4,
            3,
            short_config(2),
        )
        .unwrap()
        .with_trace(Arc::clone(&recorder));
        // Arm the seam for the first reassessment boundary; disarm before
        // asserting so a failure cannot leak the panic into later tests.
        crate::engine::DISCOVERY_PANIC_AT.store(1, Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| fleet.run_discovered(&setup, &features)));
        crate::engine::DISCOVERY_PANIC_AT.store(u64::MAX, Ordering::SeqCst);
        assert!(result.is_err(), "the leader's panic must reach the caller");
        assert_eq!(recorder.dumped(), 1, "one dump per recorder, not per panicking thread");
    }

    /// A panic inside a scheduler worker's shard task must go through the
    /// same dump-exactly-once flight-recorder gate as the lock-step
    /// engine's panic paths, and the payload must still reach the caller.
    #[test]
    fn scheduler_worker_panic_dumps_flight_recorder_once() {
        use aging_obs::FlightRecorder;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::Ordering;
        use std::sync::Arc;

        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 11).unwrap();
        let recorder = Arc::new(FlightRecorder::with_capacity(128));
        let fleet = Fleet::uniform(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            4,
            3,
            short_config(2),
        )
        .unwrap()
        .with_scheduler(SchedulerConfig::default())
        .with_trace(Arc::clone(&recorder));
        // Arm the seam for shard 0's second epoch; disarm before asserting
        // so a failure cannot leak the panic into later tests.
        crate::scheduler::SCHEDULER_PANIC_AT.store(1, Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| fleet.run_with_predictor(&predictor)));
        crate::scheduler::SCHEDULER_PANIC_AT.store(u64::MAX, Ordering::SeqCst);
        assert!(result.is_err(), "the worker panic must reach the caller");
        assert_eq!(recorder.dumped(), 1, "one dump per recorder, not per panicking thread");
    }
}
