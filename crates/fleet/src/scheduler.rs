//! The event-driven epoch scheduler: elastic fleets without barriers.
//!
//! The lock-step engine (`crate::engine`) advances every shard through a
//! [`std::sync::Barrier`] — a slow shard stalls the whole fleet twice per
//! epoch, and the population is fixed for the run. This module replaces
//! both constraints with an epoch wheel: shards become *tasks* on a ready
//! queue, a worker pool drains the queue, and each shard runs its next
//! epoch the moment it is eligible — independent of its siblings. The only
//! synchronisation points left are *leader boundaries* (discovery
//! reassessment, autoscale evaluation): no shard may start an epoch past
//! the next boundary, and the leader task runs exactly when every live
//! shard has parked there — the same single-threaded window the barrier
//! leader had, scheduled instead of elected.
//!
//! Elasticity rides on the same wheel. A [`ChurnPlan`]'s scripted joins
//! and retires are queued per owning shard and applied at the top of their
//! target epoch, before that epoch's first checkpoint; the leader task
//! evaluates the autoscale rule at its boundaries and feeds spawns into
//! the same join queues. Shards whose population hits zero are
//! *fast-forwarded* to their next join or boundary instead of ticking
//! empty epochs, and retire from the wheel once nothing can revive them.
//!
//! Determinism: per-shard epoch order is total, membership changes land at
//! fixed epochs, and every leader boundary is a global cut (all epochs
//! `< B` complete before the boundary-`B` leader runs, none `≥ B` start
//! before it finishes). On a churn-free fleet the scheduled report is
//! bit-identical to the lock-step oracle — both engines drive the same
//! [`EpochStep`] over the same shard state in the same per-shard order.

use crate::churn::ChurnPlan;
use crate::config::{FleetConfig, InstanceSpec};
use crate::engine::{make_instance, ModelBinding};
use crate::report::{ChurnStats, SchedulerStats};
use crate::shard::Shard;
use crate::step::EpochStep;
use aging_adapt::ServiceClass;
use aging_journal::{Journal, JournalRecord};
use aging_monitor::FeatureSet;
use aging_obs::{
    CounterHandle, EventId, EventKind, EventScope, FlightRecorder, GaugeHandle, HistogramHandle,
    Recorder, TraceHandle, Unit,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};

#[cfg(test)]
use std::sync::atomic::AtomicU64;

/// Test seam: makes the scheduler's shard-0 task panic when it is about
/// to run this epoch, exercising the catch-unwind + flight-recorder dump
/// path of the worker pool. `u64::MAX` disables it.
#[cfg(test)]
pub(crate) static SCHEDULER_PANIC_AT: AtomicU64 = AtomicU64::new(u64::MAX);

/// Tuning knobs of the event-driven scheduler
/// ([`crate::Fleet::with_scheduler`]). The default — one worker per
/// shard, unbounded lead — is the drop-in replacement for the lock-step
/// engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Worker threads in the pool. `0` (the default) means one per
    /// shard; values above the shard count are clamped to it.
    #[serde(default)]
    pub workers: usize,
    /// How many epochs a shard may run ahead of the slowest live shard
    /// between leader boundaries. `0` (the default) means unbounded —
    /// shards are fully independent between boundaries. Small values
    /// bound the memory the adaptation bus can accumulate when shard
    /// speeds diverge.
    #[serde(default)]
    pub max_lead_epochs: u64,
}

/// What [`run_elastic`] hands back to the engine's report assembly.
pub(crate) struct ElasticOutcome {
    /// Fleet epochs driven (max over shards — the same count the
    /// lock-step engine reports).
    pub(crate) epochs: u64,
    /// Membership accounting (meaningful when a plan was attached).
    pub(crate) churn: ChurnStats,
    /// Scheduler execution counters.
    pub(crate) scheduler: SchedulerStats,
}

/// Everything the scheduler borrows from `Fleet::run_bound`.
pub(crate) struct ElasticArgs<'a, 'b> {
    pub(crate) shards: &'a mut [Shard],
    pub(crate) binding: &'a ModelBinding<'b>,
    pub(crate) classes: &'a [ServiceClass],
    pub(crate) default_class: &'a ServiceClass,
    pub(crate) config: &'a FleetConfig,
    pub(crate) features: &'a FeatureSet,
    pub(crate) churn: Option<&'a ChurnPlan>,
    pub(crate) scheduler: SchedulerConfig,
    pub(crate) telemetry: Option<&'a aging_obs::Registry>,
    pub(crate) trace_recorder: Option<&'a FlightRecorder>,
    pub(crate) trace: TraceHandle,
    pub(crate) journal: Option<&'a Journal>,
    pub(crate) epochs_counter: CounterHandle,
}

/// One unit of work on the ready queue.
enum Task {
    /// Run shard `s`'s next epoch.
    Shard(usize),
    /// Run the leader window for this boundary (discovery re-partition,
    /// autoscale evaluation).
    Leader(u64),
}

/// A membership join waiting for its epoch on its owning shard.
struct PendingJoin {
    at_epoch: u64,
    global: usize,
    spec: InstanceSpec,
    autoscaled: bool,
}

/// Leader-boundary parameters, fixed for the run.
struct Params {
    /// Discovery reassessment interval (discovered bindings only).
    reassess: Option<u64>,
    /// `(evaluate_every_epochs, min_live)` of the autoscale rule.
    autoscale: Option<(u64, u64)>,
    /// Max epochs a shard may lead the slowest live shard (0 =
    /// unbounded).
    max_lead: u64,
}

/// The scheduler's shared state, behind one mutex. Tasks are popped by
/// the worker pool; every completion re-runs [`Core::schedule`] to queue
/// whatever just became eligible.
struct Core {
    /// Next epoch each shard will run.
    next_epoch: Vec<u64>,
    /// Live instances per shard after its last completed epoch.
    live: Vec<u64>,
    /// Shard task currently running.
    busy: Vec<bool>,
    /// Shard task currently on the ready queue.
    queued: Vec<bool>,
    /// Shard permanently retired from the wheel.
    done: Vec<bool>,
    ready: VecDeque<Task>,
    /// Leader task on the ready queue / currently running.
    leader_queued: bool,
    leader_busy: bool,
    /// Highest leader boundary completed.
    sync_done: u64,
    /// Scheduled joins per owning shard (scripted, then autoscale
    /// spawns), applied at the top of their target epoch.
    pending_joins: Vec<VecDeque<PendingJoin>>,
    /// Scheduled retires per owning shard: `(at_epoch, global index)`.
    pending_retires: Vec<VecDeque<(u64, usize)>>,
    /// Unspawned autoscale clones, in spawn order: `(global index,
    /// spec)`.
    autoscale_pool: VecDeque<(usize, InstanceSpec)>,
    /// Live instances across the fleet.
    total_live: u64,
    /// Highest epoch any shard has completed — the report's epoch count.
    max_epoch: u64,
    panicked: bool,
    /// First worker panic payload, rethrown after the pool drains.
    payload: Option<Box<dyn std::any::Any + Send>>,
    /// Pool shutdown: everything done and nothing in flight.
    exited: bool,
    stats: SchedulerStats,
    churn: ChurnStats,
    /// Membership event log: `(epoch, is_join)`, including the initial
    /// roster at epoch 0. Folded deterministically into
    /// [`ChurnStats::peak_live`] after the run.
    events: Vec<(u64, bool)>,
}

impl Core {
    /// The next leader boundary after `sync_done`, or `u64::MAX` when no
    /// boundary source is open (no discovery, autoscale exhausted).
    fn next_boundary(&self, p: &Params) -> u64 {
        let mut boundary = u64::MAX;
        if let Some(reassess) = p.reassess {
            boundary = boundary.min((self.sync_done / reassess + 1).saturating_mul(reassess));
        }
        if let Some((every, _)) = p.autoscale {
            if !self.autoscale_pool.is_empty() {
                boundary = boundary.min((self.sync_done / every + 1).saturating_mul(every));
            }
        }
        boundary
    }

    /// Queues every task that just became eligible, fast-forwards or
    /// retires dead shards, and decides leader readiness and pool
    /// shutdown. Called under the core lock after every state change.
    fn schedule(&mut self, p: &Params) {
        let n = self.live.len();
        if self.panicked {
            // Drain: drop queued work, retire every shard, and exit once
            // nothing is in flight. The payload is rethrown after join.
            self.ready.clear();
            self.leader_queued = false;
            for queued in &mut self.queued {
                *queued = false;
            }
            for done in &mut self.done {
                *done = true;
            }
            self.exited = !self.busy.iter().any(|&b| b) && !self.leader_busy;
            return;
        }
        let b_next = self.next_boundary(p);
        // Dead shards: fast-forward to whatever could make them matter
        // again (their next join, or the boundary the leader needs them
        // parked at), or retire them from the wheel for good.
        for s in 0..n {
            if self.done[s] || self.busy[s] || self.queued[s] || self.live[s] > 0 {
                continue;
            }
            let next_join = self.pending_joins[s].iter().map(|j| j.at_epoch).min();
            let target = match next_join {
                Some(join) => join.min(b_next),
                None if p.autoscale.is_some() && !self.autoscale_pool.is_empty() => b_next,
                None => {
                    self.done[s] = true;
                    continue;
                }
            };
            if target != u64::MAX && self.next_epoch[s] < target {
                self.stats.fast_forwarded_epochs += target - self.next_epoch[s];
                self.next_epoch[s] = target;
            }
        }
        let min_active = (0..n).filter(|&s| !self.done[s]).map(|s| self.next_epoch[s]).min();
        let Some(min_active) = min_active else {
            // Every shard retired: the fleet is dead and nothing can
            // revive it. No leader runs past fleet death (lock-step
            // parity), so exit as soon as in-flight work lands.
            self.exited = self.ready.is_empty()
                && !self.busy.iter().any(|&b| b)
                && !self.leader_busy
                && !self.leader_queued;
            return;
        };
        let lead_cap =
            if p.max_lead == 0 { u64::MAX } else { min_active.saturating_add(p.max_lead) };
        for s in 0..n {
            if self.done[s] || self.busy[s] || self.queued[s] {
                continue;
            }
            let epoch = self.next_epoch[s];
            if epoch >= b_next || epoch >= lead_cap {
                continue;
            }
            let join_due = self.pending_joins[s].iter().any(|j| j.at_epoch <= epoch);
            if self.live[s] == 0 && !join_due {
                continue;
            }
            self.queued[s] = true;
            self.ready.push_back(Task::Shard(s));
        }
        // The leader runs exactly when every non-retired shard is parked
        // at the boundary — the scheduled equivalent of the barrier's
        // single-threaded window.
        if b_next != u64::MAX && !self.leader_queued && !self.leader_busy {
            let all_parked = (0..n).all(|s| {
                self.done[s] || (!self.busy[s] && !self.queued[s] && self.next_epoch[s] >= b_next)
            });
            if all_parked {
                self.leader_queued = true;
                self.ready.push_back(Task::Leader(b_next));
            }
        }
        self.exited = false;
    }
}

/// One shard's serial state: the shard itself plus its [`EpochStep`] and
/// the causal tail of its trace chain. At most one task per shard runs at
/// a time (the `busy` flag), so this mutex is never contended — it exists
/// to move `&mut Shard` across the worker pool.
struct ShardSlot<'a> {
    shard: &'a mut Shard,
    step: EpochStep,
    /// This shard's last `EpochScheduled` event — the parent of the next
    /// one, chaining each shard's epochs causally.
    last_event: Option<EventId>,
}

/// Everything a worker thread needs, borrowed for the pool's scope.
struct Ctx<'a, 'b> {
    core: Mutex<Core>,
    cv: Condvar,
    slots: Vec<Mutex<ShardSlot<'a>>>,
    binding: &'a ModelBinding<'b>,
    classes: &'a [ServiceClass],
    default_class: &'a ServiceClass,
    config: &'a FleetConfig,
    features: &'a FeatureSet,
    journal: Option<&'a Journal>,
    trace_recorder: Option<&'a FlightRecorder>,
    trace: TraceHandle,
    params: Params,
    queue_depth: HistogramHandle,
    live_gauge: GaugeHandle,
    leader_hist: HistogramHandle,
    epochs_counter: CounterHandle,
}

/// Removes and returns every queue entry satisfying `due`, preserving
/// order. Queues are per-shard and tiny, so the linear scan is free.
fn take_due<T>(queue: &mut VecDeque<T>, due: impl Fn(&T) -> bool) -> Vec<T> {
    let mut taken = Vec::new();
    let mut i = 0;
    while i < queue.len() {
        if due(&queue[i]) {
            taken.push(queue.remove(i).expect("index checked against len"));
        } else {
            i += 1;
        }
    }
    taken
}

/// Appends a membership record, reporting (not propagating) failures —
/// the journal is an audit stream, not a correctness dependency.
fn journal_membership(journal: Option<&Journal>, record: &JournalRecord) {
    if let Some(journal) = journal {
        if let Err(err) = journal.append(record) {
            eprintln!("aging-fleet: journalling membership change failed: {err}");
        }
    }
}

/// Drives an elastic fleet run on the event-driven scheduler. Returns
/// after the pool drains; a worker panic is rethrown here (a leader-side
/// discovery panic lands in the runtime's payload slot instead, matching
/// the lock-step engine).
pub(crate) fn run_elastic(args: ElasticArgs<'_, '_>) -> ElasticOutcome {
    let n_shards = args.shards.len();
    let workers = match args.scheduler.workers {
        0 => n_shards,
        w => w.min(n_shards),
    }
    .max(1);
    let params = Params {
        reassess: match args.binding {
            ModelBinding::Discovered(runtime) => Some(runtime.setup.reassess_every_epochs),
            _ => None,
        },
        autoscale: args
            .churn
            .and_then(|plan| plan.autoscale.as_ref())
            .map(|rule| (rule.evaluate_every_epochs, rule.min_live as u64)),
        max_lead: args.scheduler.max_lead_epochs,
    };
    let (queue_depth, live_gauge, leader_hist) = match args.telemetry {
        Some(registry) => (
            registry.histogram(
                "fleet_scheduler_queue_depth",
                "Ready-queue depth observed at each scheduler dequeue",
                Unit::Count,
            ),
            registry.gauge("fleet_instances_live", "Instances currently live across the fleet"),
            registry.histogram(
                "fleet_leader_step_seconds",
                "Wall time of the leader's single-threaded inter-barrier window per epoch",
                Unit::Seconds,
            ),
        ),
        None => (HistogramHandle::disabled(), GaugeHandle::disabled(), HistogramHandle::disabled()),
    };

    // The initial roster is membership too: journal every founding
    // instance as joined at epoch 0, in roster order, so a replayed
    // journal reconstructs the full population — not just the churn.
    let n_initial: usize = args.shards.iter().map(|s| s.instances.len()).sum();
    let mut initial: Vec<(usize, String, String)> = args
        .shards
        .iter()
        .flat_map(|shard| {
            shard
                .instances
                .iter()
                .map(|(g, inst)| (*g, inst.name().to_string(), inst.class_name().to_string()))
        })
        .collect();
    initial.sort_by_key(|(g, _, _)| *g);
    for (_, name, class) in &initial {
        journal_membership(
            args.journal,
            &JournalRecord::InstanceJoined {
                instance: name.clone(),
                class: class.clone(),
                epoch: 0,
            },
        );
    }
    live_gauge.set(n_initial as f64);

    // Queue the scripted plan. Global indices continue the roster: the
    // initial specs hold 0..n_initial, scripted joins follow in epoch
    // order, the autoscale pool comes last — and every roster member owns
    // slot `global % n_shards`, the same round-robin as the founders.
    let mut pending_joins: Vec<VecDeque<PendingJoin>> =
        (0..n_shards).map(|_| VecDeque::new()).collect();
    let mut pending_retires: Vec<VecDeque<(u64, usize)>> =
        (0..n_shards).map(|_| VecDeque::new()).collect();
    let mut autoscale_pool: VecDeque<(usize, InstanceSpec)> = VecDeque::new();
    if let Some(plan) = args.churn {
        let joins = plan.sorted_joins();
        let mut name_to_global: Vec<(String, usize)> =
            initial.iter().map(|(g, name, _)| (name.clone(), *g)).collect();
        for (k, join) in joins.iter().enumerate() {
            let global = n_initial + k;
            name_to_global.push((join.spec.name.clone(), global));
            pending_joins[global % n_shards].push_back(PendingJoin {
                at_epoch: join.at_epoch,
                global,
                spec: join.spec.clone(),
                autoscaled: false,
            });
        }
        for (k, spec) in plan.autoscale_pool().into_iter().enumerate() {
            autoscale_pool.push_back((n_initial + joins.len() + k, spec));
        }
        let mut retires = plan.retires.clone();
        retires.sort_by_key(|r| r.at_epoch);
        for retire in retires {
            let global = name_to_global
                .iter()
                .find(|(name, _)| *name == retire.instance)
                .map(|(_, g)| *g)
                .expect("churn plan validated against the roster");
            pending_retires[global % n_shards].push_back((retire.at_epoch, global));
        }
    }

    let live: Vec<u64> = args.shards.iter().map(|s| s.instances.len() as u64).collect();
    let mut core = Core {
        next_epoch: vec![0; n_shards],
        live,
        busy: vec![false; n_shards],
        queued: vec![false; n_shards],
        done: vec![false; n_shards],
        ready: VecDeque::new(),
        leader_queued: false,
        leader_busy: false,
        sync_done: 0,
        pending_joins,
        pending_retires,
        autoscale_pool,
        total_live: n_initial as u64,
        max_epoch: 0,
        panicked: false,
        payload: None,
        exited: false,
        stats: SchedulerStats {
            workers,
            shard_tasks: 0,
            leader_steps: 0,
            fast_forwarded_epochs: 0,
        },
        churn: ChurnStats::default(),
        events: (0..n_initial).map(|_| (0, true)).collect(),
    };
    core.schedule(&params);

    let ctx = Ctx {
        core: Mutex::new(core),
        cv: Condvar::new(),
        slots: args
            .shards
            .iter_mut()
            .enumerate()
            .map(|(idx, shard)| {
                Mutex::new(ShardSlot {
                    shard,
                    step: EpochStep::new(args.binding, args.classes.len(), idx, args.trace.clone()),
                    last_event: None,
                })
            })
            .collect(),
        binding: args.binding,
        classes: args.classes,
        default_class: args.default_class,
        config: args.config,
        features: args.features,
        journal: args.journal,
        trace_recorder: args.trace_recorder,
        trace: args.trace,
        params,
        queue_depth,
        live_gauge,
        leader_hist,
        epochs_counter: args.epochs_counter,
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&ctx));
        }
    });

    let mut core = ctx.core.into_inner().expect("scheduler core poisoned");
    if let Some(payload) = core.payload.take() {
        std::panic::resume_unwind(payload);
    }
    // Peak live population, folded deterministically from the event log:
    // within an epoch, retires land before joins (the order the top-of-
    // epoch application uses for scripted churn).
    core.events.sort_unstable();
    let mut running = 0i64;
    let mut peak = 0i64;
    for &(_, is_join) in &core.events {
        running += if is_join { 1 } else { -1 };
        peak = peak.max(running);
    }
    core.churn.peak_live = peak.max(0) as u64;
    core.churn.final_live = core.total_live;
    ElasticOutcome { epochs: core.max_epoch, churn: core.churn, scheduler: core.stats }
}

/// One pool thread: pop tasks until the core says everything is drained.
fn worker_loop(ctx: &Ctx<'_, '_>) {
    loop {
        let task = {
            let mut core = ctx.core.lock().expect("scheduler core poisoned");
            loop {
                if let Some(task) = core.ready.pop_front() {
                    ctx.queue_depth.record(core.ready.len() as u64 + 1);
                    match &task {
                        Task::Shard(s) => {
                            core.queued[*s] = false;
                            core.busy[*s] = true;
                        }
                        Task::Leader(_) => {
                            core.leader_queued = false;
                            core.leader_busy = true;
                        }
                    }
                    break Some(task);
                }
                if core.exited {
                    break None;
                }
                core = ctx.cv.wait(core).expect("scheduler core poisoned");
            }
        };
        match task {
            None => return,
            Some(Task::Shard(s)) => run_shard_task(ctx, s),
            Some(Task::Leader(boundary)) => run_leader_task(ctx, boundary),
        }
    }
}

/// Runs one shard's next epoch: apply due membership changes at the top,
/// drive the [`EpochStep`], publish signatures at reassessment boundaries
/// (and on shard death), sweep retirements, then report completion.
fn run_shard_task(ctx: &Ctx<'_, '_>, s: usize) {
    let (epoch, live_before, due_joins, due_retires) = {
        let mut core = ctx.core.lock().expect("scheduler core poisoned");
        let epoch = core.next_epoch[s];
        let due_joins = take_due(&mut core.pending_joins[s], |j| j.at_epoch <= epoch);
        let due_retires = take_due(&mut core.pending_retires[s], |r| r.0 <= epoch);
        (epoch, core.live[s], due_joins, due_retires)
    };
    let mut slot = ctx.slots[s].lock().expect("shard slot poisoned");
    let slot = &mut *slot;

    // Scripted retires land before the epoch's first checkpoint; a retire
    // whose target already aged out naturally is a no-op.
    let mut retires_landed = 0u64;
    for (_, global) in &due_retires {
        if slot.shard.force_retire(*global, epoch) {
            retires_landed += 1;
        }
    }
    // Joins land at the top of the epoch: the joiner participates in the
    // epoch it joins, wired exactly like a founding member.
    let mut joined: Vec<(usize, bool, String, String)> = Vec::new();
    for join in due_joins {
        let autoscaled = join.autoscaled;
        let global = join.global;
        let instance =
            make_instance(join.spec, ctx.features, ctx.binding, ctx.classes, epoch, global);
        let name = instance.name().to_string();
        let class = instance.class_name().to_string();
        if let ModelBinding::Discovered(runtime) = ctx.binding {
            runtime.population.fetch_add(1, Ordering::Relaxed);
        }
        slot.shard.admit(global, instance);
        joined.push((global, autoscaled, name, class));
    }
    let live_now = live_before + joined.len() as u64 - retires_landed;
    let scheduled = ctx.trace.emit(
        EventScope::root().shard(s as u32).parent(slot.last_event),
        EventKind::EpochScheduled { epoch, live: live_now },
    );
    if scheduled.is_some() {
        slot.last_event = scheduled;
    }
    for (global, autoscaled, name, class) in &joined {
        let _ = ctx.trace.emit(
            EventScope::root().shard(s as u32).parent(scheduled),
            EventKind::InstanceJoined { instance: *global as u64, autoscaled: *autoscaled },
        );
        journal_membership(
            ctx.journal,
            &JournalRecord::InstanceJoined { instance: name.clone(), class: class.clone(), epoch },
        );
    }

    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        #[cfg(test)]
        if s == 0 && epoch == SCHEDULER_PANIC_AT.load(Ordering::Relaxed) {
            panic!("synthetic scheduler panic on shard {s} at epoch {epoch}");
        }
        slot.step.run(slot.shard, ctx.binding, ctx.classes, ctx.default_class, ctx.config, epoch)
            as u64
    }));
    let live_after = match &outcome {
        Ok(n) => *n,
        Err(_) => {
            // Flight-recorder dump: once per recorder across every panic
            // site, before the payload is rethrown after the pool drains.
            if let Some(recorder) = ctx.trace_recorder {
                recorder.dump_once(&format!(
                    "fleet scheduler worker panicked on shard {s} (epoch {epoch})"
                ));
            }
            0
        }
    };
    if outcome.is_ok() {
        if let ModelBinding::Discovered(runtime) = ctx.binding {
            // A dying shard publishes its final signatures immediately —
            // the values the lock-step engine would keep republishing at
            // every later boundary.
            if EpochStep::reassess_after(ctx.binding, epoch) || live_after == 0 {
                EpochStep::publish_signatures(slot.shard, runtime);
            }
        }
    }
    // Sweep retirements that surfaced this epoch — natural horizon ageing
    // and the scripted force-retires alike, each announced exactly once.
    let mut retired: Vec<(usize, String, u64, bool)> = Vec::new();
    for (global, instance) in slot.shard.instances.iter_mut() {
        if let Some((at, forced)) = instance.fresh_retirement() {
            retired.push((*global, instance.name().to_string(), at, forced));
        }
    }
    for (global, name, at, forced) in &retired {
        let _ = ctx.trace.emit(
            EventScope::root().shard(s as u32).parent(scheduled),
            EventKind::InstanceRetired { instance: *global as u64, forced: *forced },
        );
        if *forced {
            if let ModelBinding::Discovered(runtime) = ctx.binding {
                // A churn-retired instance leaves the population: clear
                // its signature so discovery stops clustering it, and
                // shrink the live count the ready-fraction gate divides
                // by. (Natural deaths keep both — bit-compatible with the
                // fixed-population engine.)
                *runtime.signatures[*global].lock().expect("signature slot poisoned") = None;
                runtime.population.fetch_sub(1, Ordering::Relaxed);
            }
        }
        journal_membership(
            ctx.journal,
            &JournalRecord::InstanceRetired { instance: name.clone(), epoch: *at, forced: *forced },
        );
    }

    let mut core = ctx.core.lock().expect("scheduler core poisoned");
    core.busy[s] = false;
    core.live[s] = live_after;
    core.next_epoch[s] = epoch + 1;
    core.stats.shard_tasks += 1;
    core.churn.scripted_retires += retires_landed;
    for (_, autoscaled, _, _) in &joined {
        if *autoscaled {
            core.churn.autoscale_spawns += 1;
        } else {
            core.churn.scripted_joins += 1;
        }
        core.events.push((epoch, true));
        core.total_live += 1;
    }
    for (_, _, at, forced) in &retired {
        if *forced {
            core.churn.forced_retires += 1;
        } else {
            core.churn.natural_retires += 1;
        }
        core.events.push((*at, false));
        core.total_live -= 1;
    }
    ctx.live_gauge.set(core.total_live as f64);
    if epoch + 1 > core.max_epoch {
        ctx.epochs_counter.add(epoch + 1 - core.max_epoch);
        core.max_epoch = epoch + 1;
    }
    if let Err(payload) = outcome {
        core.panicked = true;
        if core.payload.is_none() {
            core.payload = Some(payload);
        }
    }
    core.schedule(&ctx.params);
    ctx.cv.notify_all();
}

/// Runs the leader window for one boundary: the discovery re-partition
/// (every shard parked, so the single-threaded contract holds) and the
/// autoscale evaluation, then advances the boundary clock.
fn run_leader_task(ctx: &Ctx<'_, '_>, boundary: u64) {
    let leader_span = ctx.leader_hist.span();
    let mut discovery_panicked = false;
    if let Some(reassess) = ctx.params.reassess {
        if boundary % reassess == 0 {
            if let ModelBinding::Discovered(runtime) = ctx.binding {
                if let Err(payload) =
                    std::panic::catch_unwind(AssertUnwindSafe(|| runtime.step(boundary)))
                {
                    discovery_panicked = true;
                    if let Some(recorder) = ctx.trace_recorder {
                        recorder.dump_once(&format!("discovery step panicked at epoch {boundary}"));
                    }
                    // Lock-step parity: the leader's payload travels via
                    // the runtime, rethrown by `run_discovered` after the
                    // engine returns.
                    *runtime.panic_payload.lock().expect("payload slot") = Some(payload);
                }
            }
        }
    }
    let mut core = ctx.core.lock().expect("scheduler core poisoned");
    core.leader_busy = false;
    core.sync_done = boundary;
    core.stats.leader_steps += 1;
    if discovery_panicked {
        core.panicked = true;
    } else if let Some((every, min_live)) = ctx.params.autoscale {
        // Autoscale: top the fleet back up to its floor from the spawn
        // pool. Spawns join at the top of the boundary epoch on their
        // roster shard, reviving it if it had gone quiet.
        if boundary % every == 0 && core.total_live < min_live {
            let deficit = (min_live - core.total_live) as usize;
            for _ in 0..deficit {
                let Some((global, spec)) = core.autoscale_pool.pop_front() else {
                    break;
                };
                let target = global % core.live.len();
                core.pending_joins[target].push_back(PendingJoin {
                    at_epoch: boundary,
                    global,
                    spec,
                    autoscaled: true,
                });
                core.done[target] = false;
                if core.next_epoch[target] < boundary {
                    core.stats.fast_forwarded_epochs += boundary - core.next_epoch[target];
                    core.next_epoch[target] = boundary;
                }
            }
        }
    }
    core.schedule(&ctx.params);
    ctx.cv.notify_all();
    drop(core);
    leader_span.finish();
}
