//! The fleet engine: sharding, the worker pool and lock-step epochs.

use crate::churn::{potential_roster, ChurnPlan};
use crate::config::{
    validate_config, validate_discovery, validate_spec, DiscoverySetup, FleetConfig, FleetError,
    InstanceSpec,
};
use crate::instance::Instance;
use crate::report::{
    DiscoveredClass, DiscoveryEvaluation, DiscoveryReport, FleetReport, FleetTiming,
    InstanceReport, JournalStats,
};
use crate::scheduler::{run_elastic, ElasticArgs, SchedulerConfig};
use crate::shard::{Shard, ShardInstruments};
use crate::step::EpochStep;
use aging_adapt::discovery::{ClassDiscovery, SignatureAccumulator};
use aging_adapt::{
    AdaptiveRouter, AdaptiveService, CheckpointBus, ClassSpec, ModelService, ServiceClass,
};
use aging_core::{AgingPredictor, RejuvenationPolicy};
use aging_journal::{Journal, JournalRecord};
use aging_ml::Regressor;
use aging_monitor::FeatureSet;
use aging_obs::{
    trace_of, CounterHandle, EventKind, EventScope, FlightRecorder, GaugeHandle, HistogramHandle,
    Recorder, Registry, TraceHandle, Unit,
};
use aging_testbed::Scenario;
use aging_tune::FleetTuner;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Where the worker threads get their models from.
///
/// A frozen binding serves one `&dyn Regressor` for the whole run (the
/// original engine behaviour, bit-exact with `evaluate_policy`). An
/// adaptive binding resolves batched TTF queries through one
/// [`ModelService`] shared by every class; a routed binding holds one
/// service **per class** (`services` is indexed by the fleet's class
/// table). Either way each worker *pins* its model snapshots per epoch —
/// polling a generation counter costs one atomic load per class — and
/// re-pins at the next epoch boundary after a publish, so one epoch's
/// batch is always served by exactly one generation per class.
pub(crate) enum ModelBinding<'a> {
    Frozen(&'a dyn Regressor),
    Adaptive(&'a ModelService),
    Routed(Vec<Arc<ModelService>>),
    /// Class-discovery runs: the class table grows mid-run, so workers
    /// sync their pins from the shared runtime at epoch boundaries.
    Discovered(&'a DiscoveryRuntime<'a>),
}

/// Discovery-side telemetry, resolved once per run. All handles are
/// disabled (one untaken branch per use) when no registry is attached.
#[derive(Debug, Default)]
struct DiscoveryInstruments {
    /// `discovery_evaluation_seconds` — wall time of one leader-side
    /// partition re-evaluation (clustering + router bookkeeping).
    evaluation: HistogramHandle,
    /// `discovery_silhouette` — silhouette score of the latest accepted
    /// partition.
    silhouette: GaugeHandle,
    /// `discovery_splits_total` — classes spawned by silhouette-gated
    /// splits.
    splits: CounterHandle,
    /// `discovery_merges_total` — classes retired by merges.
    merges: CounterHandle,
    /// `discovery_reassignments_total` — instances re-routed to another
    /// class.
    reassignments: CounterHandle,
}

impl DiscoveryInstruments {
    fn resolve(registry: &Registry) -> Self {
        DiscoveryInstruments {
            evaluation: registry.histogram(
                "discovery_evaluation_seconds",
                "Wall time of one class-discovery partition re-evaluation",
                Unit::Seconds,
            ),
            silhouette: registry.gauge(
                "discovery_silhouette",
                "Silhouette score of the latest class-discovery evaluation",
            ),
            splits: registry
                .counter("discovery_splits_total", "Classes spawned by discovery splits"),
            merges: registry
                .counter("discovery_merges_total", "Classes retired by discovery merges"),
            reassignments: registry.counter(
                "discovery_reassignments_total",
                "Instances re-routed to another discovered class",
            ),
        }
    }
}

/// Shared coordination state of a [`Fleet::run_discovered`] run.
///
/// Workers write instance signatures before the epoch barrier; the
/// barrier leader re-evaluates the partition between the two barrier
/// waits (the only single-threaded window of the epoch protocol) and
/// publishes the new assignment through `version`; every worker applies
/// it at the top of the next epoch — so an instance's class, like its
/// model snapshot, is pinned within an epoch.
/// Test seam: makes the barrier leader's discovery step panic once it
/// has completed this many epochs, exercising the catch-unwind +
/// flight-recorder dump path in the single-threaded window. `u64::MAX`
/// disables it.
#[cfg(test)]
pub(crate) static DISCOVERY_PANIC_AT: AtomicU64 = AtomicU64::new(u64::MAX);

pub(crate) struct DiscoveryRuntime<'a> {
    router: &'a AdaptiveRouter,
    pub(crate) setup: &'a DiscoverySetup,
    /// Durable journal: each discovery step appends the partition it
    /// just published, so a replay can restore the assignment alongside
    /// the learned state. `None` without [`Fleet::with_journal`].
    journal: Option<Arc<Journal>>,
    /// Instance names in spec order — the identifiers the journalled
    /// partition pairs with class names.
    instance_names: Vec<String>,
    /// The fleet-side class table, indexed by discovery class id:
    /// `(class name, serving side)`. Append-only — retired classes keep
    /// their slot so worker pins stay aligned.
    pub(crate) classes: RwLock<Vec<(ServiceClass, Arc<ModelService>)>>,
    /// Current class id per instance (roster order).
    pub(crate) assignment: Vec<AtomicUsize>,
    /// Latest signature per instance (roster order), refreshed at
    /// reassessment boundaries. Elastic runs size this for the *potential*
    /// roster; slots of instances that never join stay `None`.
    pub(crate) signatures: Vec<Mutex<Option<Vec<f64>>>>,
    /// Provisioned population: instances that joined minus instances
    /// churn-retired. The min-ready-fraction gate of every discovery
    /// evaluation is computed against this *live* count, not the slot
    /// count — a half-empty roster of potential autoscale spawns must not
    /// starve the gate. Natural horizon ageing does **not** decrement it
    /// (dead instances keep their signatures and kept counting before
    /// elasticity, bit-compatibly).
    pub(crate) population: AtomicUsize,
    discovery: Mutex<ClassDiscovery>,
    reassignments: AtomicU64,
    /// Per-evaluation timeline, folded into the final report.
    log: Mutex<Vec<DiscoveryEvaluation>>,
    /// Bumped after every discovery step; workers re-sync when it moves.
    pub(crate) version: AtomicU64,
    /// A panic raised inside the leader's discovery step — caught so the
    /// barrier protocol can drain, rethrown to the caller after join.
    pub(crate) panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Leader-side discovery telemetry; disabled handles without a
    /// registry.
    instruments: DiscoveryInstruments,
    /// Trace sink for evaluation/split/merge/reassignment events;
    /// disabled when tracing is off.
    trace: TraceHandle,
}

impl DiscoveryRuntime<'_> {
    /// One partition re-evaluation, run in the single-threaded leader
    /// window — by the barrier leader between the epoch's two waits
    /// (lock-step), or by the scheduled leader task with every shard
    /// parked at the boundary (event-driven). `epochs_done` is the number
    /// of completed fleet epochs.
    pub(crate) fn step(&self, epochs_done: u64) {
        #[cfg(test)]
        if epochs_done == DISCOVERY_PANIC_AT.load(Ordering::Relaxed) {
            panic!("synthetic discovery panic at epoch {epochs_done}");
        }
        let evaluation_span = self.instruments.evaluation.span();
        let signatures: Vec<Option<Vec<f64>>> = self
            .signatures
            .iter()
            .map(|m| m.lock().expect("signature slot poisoned").clone())
            .collect();
        let ready = signatures.iter().filter(|s| s.is_some()).count();
        let outcome = self
            .discovery
            .lock()
            .expect("discovery engine poisoned")
            .evaluate_with_population(&signatures, self.population.load(Ordering::Relaxed));
        self.instruments.silhouette.set(outcome.silhouette);
        self.instruments.splits.add(outcome.new_classes.len() as u64);
        self.instruments.merges.add(outcome.retired.len() as u64);
        let evaluated = self.trace.emit(
            EventScope::root(),
            EventKind::DiscoveryEvaluated {
                silhouette: outcome.silhouette,
                active_classes: outcome.active_classes as u64,
                ready_instances: ready as u64,
            },
        );

        // New classes first, so every id the assignment references exists
        // before any worker can observe the new version.
        if !outcome.new_classes.is_empty() {
            let mut classes = self.classes.write().expect("class table poisoned");
            for nc in &outcome.new_classes {
                // Inherit the nearest centroid's currently *published*
                // model as generation 0 — the best prior the fleet has
                // for a regime that just split off.
                let (initial, seeded_from) = match nc.seeded_from {
                    Some(src) => (classes[src].1.snapshot().model, classes[src].0.to_string()),
                    None => (Arc::clone(&self.setup.template.initial), "template".to_string()),
                };
                let name = ServiceClass::new(format!("discovered-{}", nc.id));
                let spec = ClassSpec::builder(Arc::clone(&self.setup.template.learner), initial)
                    .config(self.setup.template.config)
                    .policy(Arc::clone(&self.setup.template.policy))
                    .build();
                let service = self
                    .router
                    .register_class(name.clone(), spec)
                    .expect("discovery ids are unique for the router's lifetime");
                assert_eq!(classes.len(), nc.id, "class table must align with discovery ids");
                let _ = self.trace.emit(
                    EventScope::root().class(name.as_str()).parent(evaluated),
                    EventKind::ClassSplit { seeded_from },
                );
                classes.push((name, service));
            }
        }

        // Re-point instances. Not-ready instances keep their class unless
        // it was just retired, in which case they follow the merge.
        let retired_into: HashMap<usize, usize> =
            outcome.retired.iter().map(|r| (r.id, r.into)).collect();
        for (i, slot) in outcome.assignment.iter().enumerate() {
            let current = self.assignment[i].load(Ordering::Relaxed);
            let next = match slot {
                Some(id) => *id,
                None => retired_into.get(&current).copied().unwrap_or(current),
            };
            if next != current {
                self.assignment[i].store(next, Ordering::Relaxed);
                self.reassignments.fetch_add(1, Ordering::Relaxed);
                self.instruments.reassignments.inc();
                if self.trace.enabled() {
                    let classes = self.classes.read().expect("class table poisoned");
                    let _ = self.trace.emit(
                        EventScope::root().class(classes[next].0.as_str()).parent(evaluated),
                        EventKind::ClassReassigned {
                            instance: i as u64,
                            from: classes[current].0.to_string(),
                        },
                    );
                }
            }
        }

        // Retire on the router last: assignments already point away, so
        // the drained buffer lands in the target before its next batch.
        if !outcome.retired.is_empty() {
            let classes = self.classes.read().expect("class table poisoned");
            for r in &outcome.retired {
                let (from, _) = &classes[r.id];
                let (into, _) = &classes[r.into];
                self.router.retire_class(from, into).expect("both classes are registered");
                let _ = self.trace.emit(
                    EventScope::root().class(from.as_str()).parent(evaluated),
                    EventKind::ClassMerged { into: into.to_string() },
                );
            }
        }
        self.version.fetch_add(1, Ordering::Release);

        // Journal the partition the fleet runs under from the next epoch:
        // `(instance, class)` pairs in spec order. An append failure is
        // reported but not fatal — the partition regenerates on replay by
        // re-running discovery, the record just short-circuits that.
        if let Some(journal) = &self.journal {
            let classes = self.classes.read().expect("class table poisoned");
            let assignment = self
                .instance_names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let id = self.assignment[i].load(Ordering::Relaxed);
                    (name.clone(), classes[id].0.to_string())
                })
                .collect();
            drop(classes);
            let record = JournalRecord::PartitionAssigned {
                version: self.version.load(Ordering::Relaxed),
                assignment,
            };
            if let Err(err) = journal.append(&record) {
                eprintln!("aging-fleet: journalling discovery partition failed: {err}");
            }
        }

        // Timeline entry: what this evaluation decided, plus a live
        // snapshot of each class's adaptation counters.
        let stats = self.router.stats();
        let classes = self.classes.read().expect("class table poisoned");
        let entry = DiscoveryEvaluation {
            epoch: epochs_done,
            ready_instances: ready,
            active_classes: outcome.active_classes,
            silhouette: outcome.silhouette,
            new_classes: outcome
                .new_classes
                .iter()
                .map(|nc| classes[nc.id].0.to_string())
                .collect(),
            retired_classes: outcome.retired.iter().map(|r| classes[r.id].0.to_string()).collect(),
            reassignments: self.reassignments.load(Ordering::Relaxed),
            class_drift_events: stats
                .classes
                .iter()
                .map(|c| (c.class.to_string(), c.stats.drift_events))
                .collect(),
            class_generations: stats
                .classes
                .iter()
                .map(|c| (c.class.to_string(), c.stats.generation))
                .collect(),
        };
        drop(classes);
        self.log.lock().expect("log poisoned").push(entry);
        evaluation_span.finish();
    }

    /// The final discovery report (after the run has joined).
    fn report(&self, n_instances: usize) -> DiscoveryReport {
        let classes = self.classes.read().expect("class table poisoned");
        let discovery = self.discovery.lock().expect("discovery engine poisoned");
        let assignment: Vec<usize> =
            (0..n_instances).map(|i| self.assignment[i].load(Ordering::Relaxed)).collect();
        let mut members = vec![0usize; classes.len()];
        for &id in &assignment {
            members[id] += 1;
        }
        DiscoveryReport {
            classes: classes
                .iter()
                .enumerate()
                .map(|(id, (name, _))| DiscoveredClass {
                    class: name.to_string(),
                    members: members[id],
                    retired: discovery.is_retired(id),
                })
                .collect(),
            evaluations_log: self.log.lock().expect("log poisoned").clone(),
            assignment: assignment.iter().map(|&id| classes[id].0.to_string()).collect(),
            reassignments: self.reassignments.load(Ordering::Relaxed),
            evaluations: discovery.evaluations(),
            splits: discovery.splits(),
            merges: discovery.merges(),
        }
    }
}

/// Emits one `SwapApplied` event per generation this shard's pin just
/// skipped over — `(from, to]` — each parented on its generation's
/// publish event, so the causal chain closes the loop from drift back to
/// the worker actually serving the new model. Called only when a refresh
/// moved the pin, which is rare; the enabled check keeps even that path
/// free when tracing is off.
pub(crate) fn emit_swaps(
    trace: &TraceHandle,
    class: &str,
    shard: u32,
    from: u64,
    to: u64,
    service: &ModelService,
) {
    if !trace.enabled() {
        return;
    }
    for generation in (from + 1)..=to {
        let _ = trace.emit(
            EventScope::root()
                .class(class)
                .shard(shard)
                .generation(generation)
                .parent(service.publish_event_for(generation)),
            EventKind::SwapApplied,
        );
    }
}

/// Builds one [`Instance`] for the given binding — used for the initial
/// roster and for every elastic join, so a joiner is wired exactly like a
/// founding member. `global_idx` is the instance's slot in the (potential)
/// roster; discovered runs read their current class assignment from it.
pub(crate) fn make_instance(
    spec: InstanceSpec,
    features: &FeatureSet,
    binding: &ModelBinding<'_>,
    classes: &[ServiceClass],
    joined_epoch: u64,
    global_idx: usize,
) -> Instance {
    match binding {
        ModelBinding::Discovered(runtime) => {
            let table = runtime.classes.read().expect("class table poisoned");
            let id = runtime.assignment[global_idx].load(Ordering::Relaxed);
            let mut instance = Instance::new(spec, features, id, joined_epoch);
            instance.enable_discovery(
                SignatureAccumulator::new(runtime.setup.signature, features.variables()),
                table[id].0.clone(),
            );
            instance
        }
        _ => {
            let class_idx = classes
                .iter()
                .position(|c| c == &spec.class)
                .expect("class table covers every spec, churn joiners included");
            Instance::new(spec, features, class_idx, joined_epoch)
        }
    }
}

/// A set of simulated deployments operated concurrently under shared
/// trained models.
///
/// Construction validates every spec; [`Fleet::run`] shards the instances
/// across a fixed pool of worker threads and drives them in lock-step
/// epochs of 15-second checkpoints, batching each shard's TTF inferences
/// through [`Regressor::predict_matrix`] over flat reusable
/// [`aging_ml::FeatureMatrix`]es (one per service class).
/// [`Fleet::run_adaptive`] runs the same loop against an
/// [`AdaptiveService`]; [`Fleet::run_routed`] runs it against an
/// [`AdaptiveRouter`], giving every [`ServiceClass`] its own adapting
/// model.
#[derive(Debug)]
pub struct Fleet {
    specs: Vec<InstanceSpec>,
    config: FleetConfig,
    telemetry: Option<Arc<Registry>>,
    trace: Option<Arc<FlightRecorder>>,
    journal: Option<Arc<Journal>>,
    tuner: Option<FleetTuner>,
    churn: Option<ChurnPlan>,
    scheduler: Option<SchedulerConfig>,
}

impl Fleet {
    /// Assembles a fleet from explicit per-instance specs.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::NoInstances`] for an empty spec list and
    /// [`FleetError::InvalidParameter`] for degenerate policy or
    /// configuration values (same rules as the single-instance
    /// `evaluate_policy`).
    pub fn new(specs: Vec<InstanceSpec>, config: FleetConfig) -> Result<Self, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::NoInstances);
        }
        validate_config(&config)?;
        for spec in &specs {
            validate_spec(spec)?;
        }
        Ok(Fleet {
            specs,
            config,
            telemetry: None,
            trace: None,
            journal: None,
            tuner: None,
            churn: None,
            scheduler: None,
        })
    }

    /// Attaches a telemetry registry: epoch-phase and barrier-wait timings
    /// land in it per shard, discovery instrumentation per evaluation, and
    /// the final [`FleetReport::telemetry`] carries its snapshot. Pass the
    /// *same* registry to the adaptation side's builders
    /// ([`aging_adapt::AdaptiveServiceBuilder::telemetry`],
    /// [`aging_adapt::AdaptiveRouterBuilder::telemetry`]) to get one
    /// unified snapshot; discovered runs wire their internal router
    /// automatically. Without this call the fleet pays one untaken branch
    /// per phase — never a clock read per checkpoint.
    #[must_use]
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Attaches a causal trace sink: per-shard model-swap events and the
    /// leader's epoch marks land in `recorder`, and a worker panic dumps
    /// the recorder's ring to stderr as JSONL before the payload is
    /// rethrown. Pass the *same* recorder to the adaptation side's
    /// builders ([`aging_adapt::AdaptiveServiceBuilder::trace`],
    /// [`aging_adapt::AdaptiveRouterBuilder::trace`]) to get one unified
    /// causal stream — drift → trigger → refit → publish → swap all in
    /// one [`aging_obs::Trace`]; discovered runs wire their internal
    /// router automatically. Without this call no event is built and no
    /// clock is read on any trace site.
    #[must_use]
    pub fn with_trace(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Attaches a durable checkpoint journal. Discovered runs
    /// ([`Fleet::run_discovered`]) wire it through their internal router
    /// — every routed batch is journalled *before* it is buffered — and
    /// additionally record a [`JournalRecord::PartitionAssigned`] entry
    /// at each discovery boundary, so a replay can restore both the
    /// learned state and the discovered partition. For
    /// [`Fleet::run_adaptive`]/[`Fleet::run_routed`], attach the journal
    /// to the externally built service/router instead
    /// ([`aging_adapt::AdaptiveServiceBuilder::journal`],
    /// [`aging_adapt::AdaptiveRouterBuilder::journal`]) and pass the same
    /// handle here so [`FleetReport::journal`] carries its counters.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attaches a background policy tuner to the next
    /// [`Fleet::run_routed`] call: while the fleet runs, a dedicated
    /// thread repeatedly searches the rejuvenation-policy space off the
    /// live checkpoint journal ([`FleetTuner::step`]) and publishes every
    /// gate-approved promotion into the router via
    /// [`AdaptiveRouter::apply_spec`] — the fleet literally re-configures
    /// its own adaptation policies mid-run. The final report carries the
    /// tuner's counters in [`FleetReport::tuning`].
    ///
    /// The tuner inherits the fleet's telemetry registry and trace
    /// recorder (when attached), so `tune_*` metrics and
    /// `CandidateEvaluated`/`TuneRoundCompleted`/`PolicyPromoted` events
    /// land in the same sinks as everything else. Search rounds read the
    /// journal the run is writing; rounds that race the journal's
    /// creation are skipped and retried. A run whose promotion gate never
    /// fires is report-identical to the same run without a tuner (the
    /// `tuning` field aside, which equality ignores).
    #[must_use]
    pub fn with_tuner(mut self, tuner: FleetTuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Attaches a [`ChurnPlan`]: scripted joins/retires and optional
    /// load-driven autoscaling make the population elastic. A fleet with
    /// a (non-empty) plan always executes on the event-driven scheduler
    /// (`with_scheduler`'s defaults unless one was attached explicitly) —
    /// the lock-step barrier engine assumes a fixed population.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] when the plan is
    /// inconsistent with the fleet's roster: a join at epoch 0, a
    /// duplicated or invalid joining spec, a retire of an unknown
    /// instance or one scheduled at/before its own join, or a degenerate
    /// autoscale rule.
    pub fn with_churn(mut self, plan: ChurnPlan) -> Result<Self, FleetError> {
        plan.validate(&self.specs)?;
        self.churn = Some(plan);
        Ok(self)
    }

    /// Runs the fleet on the event-driven epoch scheduler instead of the
    /// lock-step barrier loop: shards advance through a ready queue, a
    /// slow shard never stalls the fleet, and the single-threaded leader
    /// window (discovery re-partition, autoscaling) becomes a scheduled
    /// task at epoch boundaries. On a churn-free fleet the scheduled
    /// report is bit-identical to the lock-step one (asserted by the
    /// determinism-oracle tests).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Convenience constructor: `n` deployments of the same scenario and
    /// policy, with seeds `base_seed, base_seed + 1, …` so every instance
    /// ages along its own sample path.
    ///
    /// # Errors
    ///
    /// See [`Fleet::new`].
    pub fn uniform(
        scenario: &Scenario,
        policy: RejuvenationPolicy,
        n: usize,
        base_seed: u64,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        let specs = (0..n)
            .map(|i| {
                InstanceSpec::new(
                    format!("{}-{i:04}", scenario.name),
                    scenario.clone(),
                    policy,
                    base_seed.wrapping_add(i as u64),
                )
            })
            .collect();
        Fleet::new(specs, config)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The distinct service classes of this fleet, in first-appearance
    /// order over the specs — the class table every routed run indexes.
    /// Elastic fleets include the classes of every *potential* member
    /// (scripted joiners and the autoscale template), so a joiner's model
    /// service exists before it ever joins.
    pub fn classes(&self) -> Vec<ServiceClass> {
        let mut classes: Vec<ServiceClass> = Vec::new();
        for (_, spec, _) in potential_roster(&self.specs, self.churn.as_ref()) {
            if !classes.contains(&spec.class) {
                classes.push(spec.class);
            }
        }
        classes
    }

    /// Operates the fleet to its horizon with a trained predictor, sharing
    /// its model and feature pipeline across all worker threads.
    pub fn run_with_predictor(self, predictor: &AgingPredictor) -> FleetReport {
        self.run(predictor.model(), predictor.features())
    }

    /// Operates the fleet to its horizon with one frozen model.
    ///
    /// `model` is shared by reference across the worker pool (it is `Sync`
    /// by the `Regressor` contract); `features` must be the set the model
    /// was trained on. The outcome is deterministic in the specs, seeds and
    /// config — wall-clock [`FleetTiming`] is the only non-reproducible
    /// part, and it is excluded from report equality.
    pub fn run(self, model: &dyn Regressor, features: &FeatureSet) -> FleetReport {
        self.run_bound(ModelBinding::Frozen(model), features, None)
    }

    /// Operates the fleet against a live [`AdaptiveService`]: shards
    /// resolve their batched TTF queries through the service's current
    /// model generation (pinned per epoch) and stream labelled crash
    /// epochs onto its [`CheckpointBus`], so the service retrains and
    /// publishes new generations *while the fleet keeps running* — worker
    /// threads never pause for training. Every class of the fleet is
    /// served by the one service (use [`Fleet::run_routed`] for per-class
    /// models).
    ///
    /// With drift triggering disabled ([`aging_adapt::DriftConfig`]
    /// `enabled: false` and no periodic schedule) the service never leaves
    /// generation 0 and this is outcome-identical to [`Fleet::run`] on the
    /// initial model.
    ///
    /// The returned report carries [`aging_adapt::AdaptationStats`]
    /// snapshotted at the end of the run. Because retraining proceeds
    /// concurrently with epoch processing, adaptive outcomes are *not*
    /// bit-deterministic across runs — which epoch first sees a new
    /// generation depends on thread scheduling. (For the same reason,
    /// drift-*enabled* runs are not comparable checkpoint-for-checkpoint
    /// across versions either: the labelled stream now also carries one
    /// monitor-only counterfactual observation per proactive restart,
    /// which feeds drift detection — deliberately, so an adapted fleet
    /// whose crashes have become rare keeps its detection and
    /// self-tuning alive. The bit-exact guarantees are the drift-DISABLED
    /// identities asserted by the integration tests, which are
    /// unaffected.)
    pub fn run_adaptive(self, service: &AdaptiveService, features: &FeatureSet) -> FleetReport {
        let mut report = self.run_bound(
            ModelBinding::Adaptive(service.model_service()),
            features,
            Some(service.bus()),
        );
        report.adaptation = Some(service.stats());
        report
    }

    /// Operates a heterogeneous fleet against an [`AdaptiveRouter`]: every
    /// instance's TTF queries resolve through **its class's** model
    /// service (pinned per worker epoch, re-pinned on generation change),
    /// and labelled crash epochs stream onto the router's bounded bus
    /// tagged with their class — so a workload shift in one class retrains
    /// that class's model while every other class keeps its own.
    ///
    /// The report carries the router's per-class
    /// [`aging_adapt::RouterStats`] (and the aggregate in
    /// `report.adaptation` is left `None` — classes don't share counters).
    /// The stats are snapshotted the moment the run returns, while the
    /// router may still be draining the last epochs' batches and fitting
    /// their refits; callers that need settled numbers should
    /// [`AdaptiveRouter::quiesce`] and re-read `router.stats()` (and may
    /// overwrite `report.routing` with the result).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] when some instance's class
    /// has no registered model service on the router.
    pub fn run_routed(
        mut self,
        router: &AdaptiveRouter,
        features: &FeatureSet,
    ) -> Result<FleetReport, FleetError> {
        let services: Vec<Arc<ModelService>> = self
            .classes()
            .iter()
            .map(|class| {
                router.model_service(class).ok_or_else(|| {
                    FleetError::InvalidParameter(format!(
                        "no model service registered for service class `{class}`"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let tuner = self.tuner.take();
        let telemetry = self.telemetry.clone();
        let trace = self.trace.clone();
        // Policy search runs beside the epoch loop: one background thread
        // steps the tuner off the live journal and publishes every
        // gate-approved promotion into the router as a spec swap. The
        // thread is scoped, so it can borrow the router and is always
        // joined before the report leaves.
        let stop_tuning = AtomicBool::new(false);
        let (mut report, tuning) = std::thread::scope(|scope| {
            let tuner_handle = tuner.map(|mut tuner| {
                if let Some(registry) = &telemetry {
                    tuner.attach_telemetry(registry);
                }
                tuner.attach_trace(trace_of(&trace));
                let stop_tuning = &stop_tuning;
                let trace = trace.clone();
                scope.spawn(move || {
                    while !stop_tuning.load(Ordering::Acquire) {
                        let stepped = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            // Journal read errors are expected while the
                            // run has not created the directory yet — skip
                            // the round and retry.
                            if let Ok(promotions) = tuner.step() {
                                for promotion in promotions {
                                    if let Some(initial) = tuner.initial_for(&promotion.class) {
                                        let _ = router.apply_spec(
                                            &promotion.class,
                                            promotion.point.to_spec(initial),
                                        );
                                    }
                                }
                            }
                        }));
                        if stepped.is_err() {
                            // A panicking search (a learner blowing up on
                            // replayed data, say) must not strand the run:
                            // dump the flight recorder once and stop
                            // tuning; the fleet finishes under whatever
                            // incumbents are already live.
                            if let Some(recorder) = &trace {
                                recorder.dump_once("fleet tuner thread panicked");
                            }
                            break;
                        }
                        // Breathe between rounds in stop-checking slices so
                        // shutdown never waits on a sleeping tuner.
                        for _ in 0..5 {
                            if stop_tuning.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                    tuner.stats()
                })
            });
            let report =
                self.run_bound(ModelBinding::Routed(services), features, Some(router.bus()));
            stop_tuning.store(true, Ordering::Release);
            let tuning = tuner_handle.and_then(|handle| handle.join().ok());
            (report, tuning)
        });
        report.routing = Some(router.stats());
        report.tuning = tuning;
        Ok(report)
    }

    /// Operates the fleet with **no operator-assigned classes**: every
    /// instance starts in the seed class `discovered-0` (spec classes are
    /// ignored), served by `setup.template.initial`. Each instance's
    /// labelled-checkpoint stream is summarised into an aging-signature
    /// vector, and at every `setup.reassess_every_epochs` boundary the
    /// discovery engine re-clusters the fleet: a silhouette- and
    /// separation-gated split spawns a new class (with its own
    /// [`aging_adapt::AdaptationPipeline`] seeded from the nearest
    /// centroid's published model), converged classes merge back, and
    /// instances are re-routed — all at epoch boundaries, with the same
    /// pin discipline as the models.
    ///
    /// The returned report carries the discovered partition in
    /// [`FleetReport::discovery`] and the per-class router counters in
    /// [`FleetReport::routing`] (quiesced, so the numbers are settled).
    /// With drift disabled in the template, outcomes and partitions are
    /// deterministic in the specs, seeds and config — shard count
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] for a zero reassessment
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate template config, threshold policy, router
    /// config or discovery config — the same panics the router builder
    /// and discovery constructors raise.
    pub fn run_discovered(
        self,
        setup: &DiscoverySetup,
        features: &FeatureSet,
    ) -> Result<FleetReport, FleetError> {
        validate_discovery(setup)?;
        let telemetry = self.telemetry.clone();
        let trace = self.trace.clone();
        let journal = self.journal.clone();
        let seed_class = ServiceClass::new("discovered-0");
        let mut router_builder = AdaptiveRouter::builder(features.variables().to_vec())
            .class(seed_class.clone(), setup.template.clone())
            .config(setup.router);
        if let Some(registry) = &telemetry {
            router_builder = router_builder.telemetry(Arc::clone(registry));
        }
        if let Some(recorder) = &trace {
            router_builder = router_builder.trace(Arc::clone(recorder));
        }
        if let Some(journal) = &journal {
            router_builder = router_builder.journal(Arc::clone(journal));
        }
        let router = router_builder.spawn();
        let mut discovery_engine = ClassDiscovery::new(setup.discovery);
        if let Some(registry) = &telemetry {
            discovery_engine.set_recorder(Arc::clone(registry) as Arc<dyn Recorder>);
        }
        // Elastic runs size the runtime's slots for the *potential*
        // roster — initial specs, scripted joiners, the autoscale pool —
        // so membership changes never reallocate shared state. Joined
        // instances always occupy a contiguous prefix of the roster.
        let roster = potential_roster(&self.specs, self.churn.as_ref());
        let n_slots = roster.len();
        let instance_names: Vec<String> =
            roster.iter().map(|(_, spec, _)| spec.name.clone()).collect();
        let (mut report, discovery_report) = {
            let runtime = DiscoveryRuntime {
                router: &router,
                setup,
                journal,
                instance_names,
                classes: RwLock::new(vec![(
                    seed_class.clone(),
                    router.model_service(&seed_class).expect("seed class registered above"),
                )]),
                assignment: (0..n_slots).map(|_| AtomicUsize::new(0)).collect(),
                signatures: (0..n_slots).map(|_| Mutex::new(None)).collect(),
                population: AtomicUsize::new(self.specs.len()),
                discovery: Mutex::new(discovery_engine),
                reassignments: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
                version: AtomicU64::new(0),
                panic_payload: Mutex::new(None),
                instruments: match &telemetry {
                    Some(registry) => DiscoveryInstruments::resolve(registry),
                    None => DiscoveryInstruments::default(),
                },
                trace: trace_of(&trace),
            };
            let report =
                self.run_bound(ModelBinding::Discovered(&runtime), features, Some(router.bus()));
            // Rethrow a caught leader panic BEFORE touching the runtime's
            // mutexes: the panic may have poisoned them mid-step, and a
            // poison panic out of `report()` would mask the real payload.
            if let Some(payload) = runtime.panic_payload.lock().expect("payload slot").take() {
                std::panic::resume_unwind(payload);
            }
            // Joined instances are a roster prefix, so the per-instance
            // report count is exactly the slice the partition covers.
            let joined = report.instances.len();
            (report, runtime.report(joined))
        };
        report.discovery = Some(discovery_report);
        // Settle the learning side so the reported counters are final.
        router.quiesce(Duration::from_secs(60));
        report.routing = Some(router.stats());
        router.shutdown();
        // Re-snapshot after the quiesce so late refit/swap observations —
        // batches still draining when the epoch loop returned — are in.
        if let Some(registry) = &telemetry {
            report.telemetry = Some(registry.snapshot());
        }
        Ok(report)
    }

    fn run_bound(
        self,
        binding: ModelBinding<'_>,
        features: &FeatureSet,
        bus: Option<CheckpointBus>,
    ) -> FleetReport {
        // Discovered runs ignore the specs' operator classes: everything
        // starts in the seed class and the table grows as regimes appear.
        let classes = match &binding {
            ModelBinding::Discovered(runtime) => {
                vec![runtime.classes.read().expect("class table poisoned")[0].0.clone()]
            }
            _ => self.classes(),
        };
        let n_classes = classes.len();
        let Fleet { specs, config, telemetry, trace, journal, tuner: _, churn, scheduler } = self;
        let trace_handle = trace_of(&trace);
        let n_instances = specs.len();
        let n_shards = config.shards.min(n_instances).max(1);

        // Round-robin instances over shards; the original index rides along
        // so reports return in spec order regardless of sharding.
        let mut shards: Vec<Shard> = {
            let mut buckets: Vec<Vec<(usize, Instance)>> =
                (0..n_shards).map(|_| Vec::new()).collect();
            for (i, spec) in specs.into_iter().enumerate() {
                let instance = make_instance(spec, features, &binding, &classes, 0, i);
                buckets[i % n_shards].push((i, instance));
            }
            buckets
                .into_iter()
                .map(|bucket| Shard::new(bucket, features.len(), n_classes, bus.clone()))
                .collect()
        };
        if let Some(registry) = &telemetry {
            for (idx, shard) in shards.iter_mut().enumerate() {
                shard.set_instruments(ShardInstruments::resolve(registry, idx));
            }
        }
        // The fleet epoch counter, resolved once before any pool starts;
        // a disabled handle keeps the untelemetered loop free of clock
        // reads. Both engines advance it so `fleet_epochs_total` always
        // equals the report's epoch count.
        let epochs_counter = match &telemetry {
            Some(registry) => {
                registry.counter("fleet_epochs_total", "Completed lock-step fleet epochs")
            }
            None => CounterHandle::disabled(),
        };
        let default_class = ServiceClass::default();
        let started = Instant::now();
        let binding = &binding;
        let classes = &classes[..];

        // Elastic runs — a churn plan or an explicit scheduler config —
        // execute on the event-driven epoch scheduler; everything else
        // keeps the lock-step barrier loop (the determinism oracle).
        let elastic = churn.is_some() || scheduler.is_some();
        let (epochs, churn_stats, scheduler_stats) = if elastic {
            let outcome = run_elastic(ElasticArgs {
                shards: &mut shards,
                binding,
                classes,
                default_class: &default_class,
                config: &config,
                features,
                churn: churn.as_ref(),
                scheduler: scheduler.unwrap_or_default(),
                telemetry: telemetry.as_deref(),
                trace_recorder: trace.as_deref(),
                trace: trace_handle.clone(),
                journal: journal.as_deref(),
                epochs_counter: epochs_counter.clone(),
            });
            // Churn accounting only reports when a plan was attached: a
            // plain scheduled run must compare equal to its lock-step
            // oracle, and `FleetReport::churn` participates in equality.
            (outcome.epochs, churn.as_ref().map(|_| outcome.churn), Some(outcome.scheduler))
        } else {
            // Barrier-wait histograms (one per shard) and the leader-phase
            // histogram, resolved once before the pool starts.
            let barrier_waits: Vec<HistogramHandle> = (0..n_shards)
                .map(|idx| match &telemetry {
                    Some(registry) => registry.histogram_with(
                        "fleet_barrier_wait_seconds",
                        "Wall time one shard spends parked per epoch-barrier wait (two waits per epoch)",
                        Unit::Seconds,
                        "shard",
                        &idx.to_string(),
                    ),
                    None => HistogramHandle::disabled(),
                })
                .collect();
            // The leader's inter-barrier work gets its own series — before
            // this existed, leader time was silently blamed on every other
            // worker's barrier-wait histogram.
            let leader_hist = match &telemetry {
                Some(registry) => registry.histogram(
                    "fleet_leader_step_seconds",
                    "Wall time of the leader's single-threaded inter-barrier window per epoch",
                    Unit::Seconds,
                ),
                None => HistogramHandle::disabled(),
            };

            // Lock-step epoch loop. Every worker advances its shard by one
            // checkpoint ([`EpochStep::run`], shared with the event-driven
            // scheduler), then the fleet synchronises on a barrier.
            // Liveness is accumulated into a parity-indexed counter pair:
            // epoch `e` adds to `live[e % 2]`, and between the two barrier
            // waits — when no thread can be writing either counter — the
            // leader zeroes the counter the *next* epoch will use. Workers
            // therefore agree on "anyone still live?" at every epoch and
            // exit together.
            //
            // A panicking epoch (a model or simulator assertion) must not
            // strand the sibling workers at the barrier, so each epoch runs
            // under `catch_unwind`: the panicking worker still completes
            // the epoch's two waits while raising the shared `panicked`
            // flag, every worker exits at the epoch boundary, and the
            // payload is rethrown on join.
            let barrier = Barrier::new(n_shards);
            let live = [AtomicU64::new(0), AtomicU64::new(0)];
            let panicked = AtomicBool::new(false);

            let epochs = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .enumerate()
                    .map(|(shard_idx, shard)| {
                        let barrier = &barrier;
                        let live = &live;
                        let panicked = &panicked;
                        let trace_recorder = trace.as_deref();
                        let default_class = &default_class;
                        let config = &config;
                        let barrier_wait = barrier_waits[shard_idx].clone();
                        let leader_hist = leader_hist.clone();
                        let epochs_counter = epochs_counter.clone();
                        let trace_handle = trace_handle.clone();
                        scope.spawn(move || {
                            let mut step =
                                EpochStep::new(binding, n_classes, shard_idx, trace_handle.clone());
                            let mut epoch = 0u64;
                            loop {
                                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    step.run(shard, binding, classes, default_class, config, epoch)
                                        as u64
                                }));
                                let shard_live = match &outcome {
                                    Ok(n) => *n,
                                    Err(_) => {
                                        panicked.store(true, Ordering::SeqCst);
                                        // Flight-recorder dump: the newest
                                        // events leading up to the panic,
                                        // once per recorder across every
                                        // panic site, before the payload is
                                        // rethrown.
                                        if let Some(recorder) = trace_recorder {
                                            recorder.dump_once(&format!(
                                                "fleet worker panicked on shard {shard_idx} \
                                                 (epoch {epoch})"
                                            ));
                                        }
                                        0
                                    }
                                };
                                // Reassessment boundary: publish this
                                // shard's signatures before the barrier so
                                // the leader sees every instance's latest
                                // stream.
                                let reassess = EpochStep::reassess_after(binding, epoch);
                                if reassess {
                                    if let ModelBinding::Discovered(runtime) = binding {
                                        EpochStep::publish_signatures(shard, runtime);
                                    }
                                }
                                let parity = (epoch % 2) as usize;
                                live[parity].fetch_add(shard_live, Ordering::SeqCst);
                                let wait_span = barrier_wait.span();
                                let wait = barrier.wait();
                                wait_span.finish();
                                let keep_going = live[parity].load(Ordering::SeqCst) > 0
                                    && !panicked.load(Ordering::SeqCst);
                                if wait.is_leader() {
                                    let leader_span = leader_hist.span();
                                    epochs_counter.inc();
                                    let _ = trace_handle.emit(
                                        EventScope::root(),
                                        EventKind::EpochCompleted { epoch },
                                    );
                                    live[1 - parity].store(0, Ordering::SeqCst);
                                    // The inter-barrier window is the epoch
                                    // protocol's only single-threaded
                                    // section: the leader re-evaluates the
                                    // partition here, every other worker
                                    // parked at the second wait. A panicking
                                    // step must not strand them — catch,
                                    // flag, rethrow after join.
                                    if reassess && keep_going {
                                        if let ModelBinding::Discovered(runtime) = binding {
                                            if let Err(payload) =
                                                std::panic::catch_unwind(AssertUnwindSafe(|| {
                                                    runtime.step(epoch + 1)
                                                }))
                                            {
                                                panicked.store(true, Ordering::SeqCst);
                                                // Same once-per-recorder
                                                // dump as the worker path —
                                                // whoever panics first wins
                                                // the gate.
                                                if let Some(recorder) = trace_recorder {
                                                    recorder.dump_once(&format!(
                                                        "discovery step panicked at epoch {}",
                                                        epoch + 1
                                                    ));
                                                }
                                                *runtime
                                                    .panic_payload
                                                    .lock()
                                                    .expect("payload slot") = Some(payload);
                                            }
                                        }
                                    }
                                    leader_span.finish();
                                }
                                let wait_span = barrier_wait.span();
                                barrier.wait();
                                wait_span.finish();
                                epoch += 1;
                                if let Err(payload) = outcome {
                                    std::panic::resume_unwind(payload);
                                }
                                if !keep_going {
                                    return epoch;
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(epochs) => epochs,
                        // Rethrow the worker's original payload to the
                        // caller.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .max()
                    .unwrap_or(0)
            });
            (epochs, None, None)
        };

        let wall_secs = started.elapsed().as_secs_f64();
        let mut reports: Vec<(usize, InstanceReport)> = shards
            .iter()
            .flat_map(|s| s.instances.iter().map(|(i, inst)| (*i, inst.report())))
            .collect();
        reports.sort_by_key(|(i, _)| *i);
        let instances: Vec<InstanceReport> = reports.into_iter().map(|(_, r)| r).collect();
        let checkpoints: u64 = instances.iter().map(|i| i.checkpoints).sum();
        let timing = FleetTiming {
            wall_secs,
            checkpoints_per_sec: if wall_secs > 0.0 { checkpoints as f64 / wall_secs } else { 0.0 },
        };
        let mut report = FleetReport::aggregate(
            instances,
            n_shards,
            epochs,
            config.rejuvenation.horizon_secs,
            timing,
        );
        report.churn = churn_stats;
        report.scheduler = scheduler_stats;
        report.telemetry = telemetry.as_ref().map(|registry| registry.snapshot());
        report.journal = journal.as_ref().map(|journal| JournalStats {
            appended_records: journal.appended(),
            fsyncs: journal.fsyncs(),
            segment_rotations: journal.rotations(),
        });
        report
    }
}
