//! The fleet engine: sharding, the worker pool and lock-step epochs.

use crate::config::{validate_config, validate_spec, FleetConfig, FleetError, InstanceSpec};
use crate::instance::Instance;
use crate::report::{FleetReport, FleetTiming, InstanceReport};
use crate::shard::{EpochModels, Shard};
use aging_adapt::{
    AdaptiveRouter, AdaptiveService, CheckpointBus, ModelService, ModelSnapshot, ServiceClass,
};
use aging_core::{AgingPredictor, RejuvenationPolicy};
use aging_ml::Regressor;
use aging_monitor::FeatureSet;
use aging_testbed::Scenario;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Where the worker threads get their models from.
///
/// A frozen binding serves one `&dyn Regressor` for the whole run (the
/// original engine behaviour, bit-exact with `evaluate_policy`). An
/// adaptive binding resolves batched TTF queries through one
/// [`ModelService`] shared by every class; a routed binding holds one
/// service **per class** (`services` is indexed by the fleet's class
/// table). Either way each worker *pins* its model snapshots per epoch —
/// polling a generation counter costs one atomic load per class — and
/// re-pins at the next epoch boundary after a publish, so one epoch's
/// batch is always served by exactly one generation per class.
enum ModelBinding<'a> {
    Frozen(&'a dyn Regressor),
    Adaptive(&'a ModelService),
    Routed(Vec<Arc<ModelService>>),
}

/// A set of simulated deployments operated concurrently under shared
/// trained models.
///
/// Construction validates every spec; [`Fleet::run`] shards the instances
/// across a fixed pool of worker threads and drives them in lock-step
/// epochs of 15-second checkpoints, batching each shard's TTF inferences
/// through [`Regressor::predict_matrix`] over flat reusable
/// [`aging_ml::FeatureMatrix`]es (one per service class).
/// [`Fleet::run_adaptive`] runs the same loop against an
/// [`AdaptiveService`]; [`Fleet::run_routed`] runs it against an
/// [`AdaptiveRouter`], giving every [`ServiceClass`] its own adapting
/// model.
#[derive(Debug)]
pub struct Fleet {
    specs: Vec<InstanceSpec>,
    config: FleetConfig,
}

impl Fleet {
    /// Assembles a fleet from explicit per-instance specs.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::NoInstances`] for an empty spec list and
    /// [`FleetError::InvalidParameter`] for degenerate policy or
    /// configuration values (same rules as the single-instance
    /// `evaluate_policy`).
    pub fn new(specs: Vec<InstanceSpec>, config: FleetConfig) -> Result<Self, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::NoInstances);
        }
        validate_config(&config)?;
        for spec in &specs {
            validate_spec(spec)?;
        }
        Ok(Fleet { specs, config })
    }

    /// Convenience constructor: `n` deployments of the same scenario and
    /// policy, with seeds `base_seed, base_seed + 1, …` so every instance
    /// ages along its own sample path.
    ///
    /// # Errors
    ///
    /// See [`Fleet::new`].
    pub fn uniform(
        scenario: &Scenario,
        policy: RejuvenationPolicy,
        n: usize,
        base_seed: u64,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        let specs = (0..n)
            .map(|i| {
                InstanceSpec::new(
                    format!("{}-{i:04}", scenario.name),
                    scenario.clone(),
                    policy,
                    base_seed.wrapping_add(i as u64),
                )
            })
            .collect();
        Fleet::new(specs, config)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The distinct service classes of this fleet, in first-appearance
    /// order over the specs — the class table every routed run indexes.
    pub fn classes(&self) -> Vec<ServiceClass> {
        let mut classes: Vec<ServiceClass> = Vec::new();
        for spec in &self.specs {
            if !classes.contains(&spec.class) {
                classes.push(spec.class.clone());
            }
        }
        classes
    }

    /// Operates the fleet to its horizon with a trained predictor, sharing
    /// its model and feature pipeline across all worker threads.
    pub fn run_with_predictor(self, predictor: &AgingPredictor) -> FleetReport {
        self.run(predictor.model(), predictor.features())
    }

    /// Operates the fleet to its horizon with one frozen model.
    ///
    /// `model` is shared by reference across the worker pool (it is `Sync`
    /// by the `Regressor` contract); `features` must be the set the model
    /// was trained on. The outcome is deterministic in the specs, seeds and
    /// config — wall-clock [`FleetTiming`] is the only non-reproducible
    /// part, and it is excluded from report equality.
    pub fn run(self, model: &dyn Regressor, features: &FeatureSet) -> FleetReport {
        self.run_bound(ModelBinding::Frozen(model), features, None)
    }

    /// Operates the fleet against a live [`AdaptiveService`]: shards
    /// resolve their batched TTF queries through the service's current
    /// model generation (pinned per epoch) and stream labelled crash
    /// epochs onto its [`CheckpointBus`], so the service retrains and
    /// publishes new generations *while the fleet keeps running* — worker
    /// threads never pause for training. Every class of the fleet is
    /// served by the one service (use [`Fleet::run_routed`] for per-class
    /// models).
    ///
    /// With drift triggering disabled ([`aging_adapt::DriftConfig`]
    /// `enabled: false` and no periodic schedule) the service never leaves
    /// generation 0 and this is outcome-identical to [`Fleet::run`] on the
    /// initial model.
    ///
    /// The returned report carries [`aging_adapt::AdaptationStats`]
    /// snapshotted at the end of the run. Because retraining proceeds
    /// concurrently with epoch processing, adaptive outcomes are *not*
    /// bit-deterministic across runs — which epoch first sees a new
    /// generation depends on thread scheduling. (For the same reason,
    /// drift-*enabled* runs are not comparable checkpoint-for-checkpoint
    /// across versions either: the labelled stream now also carries one
    /// monitor-only counterfactual observation per proactive restart,
    /// which feeds drift detection — deliberately, so an adapted fleet
    /// whose crashes have become rare keeps its detection and
    /// self-tuning alive. The bit-exact guarantees are the drift-DISABLED
    /// identities asserted by the integration tests, which are
    /// unaffected.)
    pub fn run_adaptive(self, service: &AdaptiveService, features: &FeatureSet) -> FleetReport {
        let mut report = self.run_bound(
            ModelBinding::Adaptive(service.model_service()),
            features,
            Some(service.bus()),
        );
        report.adaptation = Some(service.stats());
        report
    }

    /// Operates a heterogeneous fleet against an [`AdaptiveRouter`]: every
    /// instance's TTF queries resolve through **its class's** model
    /// service (pinned per worker epoch, re-pinned on generation change),
    /// and labelled crash epochs stream onto the router's bounded bus
    /// tagged with their class — so a workload shift in one class retrains
    /// that class's model while every other class keeps its own.
    ///
    /// The report carries the router's per-class
    /// [`aging_adapt::RouterStats`] (and the aggregate in
    /// `report.adaptation` is left `None` — classes don't share counters).
    /// The stats are snapshotted the moment the run returns, while the
    /// router may still be draining the last epochs' batches and fitting
    /// their refits; callers that need settled numbers should
    /// [`AdaptiveRouter::quiesce`] and re-read `router.stats()` (and may
    /// overwrite `report.routing` with the result).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] when some instance's class
    /// has no registered model service on the router.
    pub fn run_routed(
        self,
        router: &AdaptiveRouter,
        features: &FeatureSet,
    ) -> Result<FleetReport, FleetError> {
        let services: Vec<Arc<ModelService>> = self
            .classes()
            .iter()
            .map(|class| {
                router.model_service(class).ok_or_else(|| {
                    FleetError::InvalidParameter(format!(
                        "no model service registered for service class `{class}`"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let mut report =
            self.run_bound(ModelBinding::Routed(services), features, Some(router.bus()));
        report.routing = Some(router.stats());
        Ok(report)
    }

    fn run_bound(
        self,
        binding: ModelBinding<'_>,
        features: &FeatureSet,
        bus: Option<CheckpointBus>,
    ) -> FleetReport {
        let classes = self.classes();
        let n_classes = classes.len();
        let Fleet { specs, config } = self;
        let n_instances = specs.len();
        let n_shards = config.shards.min(n_instances).max(1);

        // Round-robin instances over shards; the original index rides along
        // so reports return in spec order regardless of sharding.
        let mut shards: Vec<Shard> = {
            let mut buckets: Vec<Vec<(usize, Instance)>> =
                (0..n_shards).map(|_| Vec::new()).collect();
            for (i, spec) in specs.into_iter().enumerate() {
                let class_idx = classes
                    .iter()
                    .position(|c| c == &spec.class)
                    .expect("class table built from these specs");
                buckets[i % n_shards].push((i, Instance::new(spec, features, class_idx)));
            }
            buckets
                .into_iter()
                .map(|bucket| Shard::new(bucket, features.len(), n_classes, bus.clone()))
                .collect()
        };

        // Lock-step epoch loop. Every worker advances its shard by one
        // checkpoint, then the fleet synchronises on a barrier. Liveness is
        // accumulated into a parity-indexed counter pair: epoch `e` adds to
        // `live[e % 2]`, and between the two barrier waits — when no thread
        // can be writing either counter — the leader zeroes the counter the
        // *next* epoch will use. Workers therefore agree on "anyone still
        // live?" at every epoch and exit together.
        //
        // A panicking epoch (a model or simulator assertion) must not strand
        // the sibling workers at the barrier, so each epoch runs under
        // `catch_unwind`: the panicking worker still completes the epoch's
        // two waits while raising the shared `panicked` flag, every worker
        // exits at the epoch boundary, and the payload is rethrown on join.
        let barrier = Barrier::new(n_shards);
        let live = [AtomicU64::new(0), AtomicU64::new(0)];
        let panicked = AtomicBool::new(false);
        let started = Instant::now();
        let binding = &binding;

        let epochs = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .map(|shard| {
                    let barrier = &barrier;
                    let live = &live;
                    let panicked = &panicked;
                    let config = &config;
                    scope.spawn(move || {
                        // Adaptive/routed runs pin one model snapshot per
                        // class per epoch: pins are refreshed at epoch
                        // boundaries only, and only when the generation
                        // counter moved, so a publish mid-epoch never
                        // splits a batch across two models.
                        let mut pins: Vec<ModelSnapshot> = match binding {
                            ModelBinding::Frozen(_) => Vec::new(),
                            ModelBinding::Adaptive(service) => vec![service.snapshot()],
                            ModelBinding::Routed(services) => {
                                services.iter().map(|s| s.snapshot()).collect()
                            }
                        };
                        // Effective rejuvenation thresholds follow the same
                        // epoch-boundary discipline as the pins: read once
                        // per class per epoch from the class's model
                        // service, so a self-tuning policy's update lands
                        // at an epoch edge, never mid-batch. All `None`
                        // (the fixed-policy state) leaves the spec
                        // thresholds in force — bit-identical to the
                        // pre-policy engine.
                        let mut thresholds: Vec<Option<f64>> = vec![None; n_classes];
                        let mut epoch = 0u64;
                        loop {
                            match binding {
                                ModelBinding::Frozen(_) => {}
                                ModelBinding::Adaptive(service) => {
                                    service.refresh(&mut pins[0]);
                                    // One service serves every class.
                                    thresholds.fill(service.rejuvenation_threshold_secs());
                                }
                                ModelBinding::Routed(services) => {
                                    for ((service, pin), threshold) in
                                        services.iter().zip(&mut pins).zip(&mut thresholds)
                                    {
                                        service.refresh(pin);
                                        *threshold = service.rejuvenation_threshold_secs();
                                    }
                                }
                            }
                            // The model table this epoch serves from —
                            // borrows of `pins`, no per-epoch allocation.
                            let models = match binding {
                                ModelBinding::Frozen(model) => {
                                    EpochModels::Uniform { model: *model, generation: 0 }
                                }
                                ModelBinding::Adaptive(_) => EpochModels::Uniform {
                                    model: pins[0].model.as_ref(),
                                    generation: pins[0].generation,
                                },
                                ModelBinding::Routed(_) => EpochModels::PerClass(&pins),
                            };
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                shard.epoch(models, &thresholds, config) as u64
                            }));
                            let shard_live = match &outcome {
                                Ok(n) => *n,
                                Err(_) => {
                                    panicked.store(true, Ordering::SeqCst);
                                    0
                                }
                            };
                            let parity = (epoch % 2) as usize;
                            live[parity].fetch_add(shard_live, Ordering::SeqCst);
                            let wait = barrier.wait();
                            let keep_going = live[parity].load(Ordering::SeqCst) > 0
                                && !panicked.load(Ordering::SeqCst);
                            if wait.is_leader() {
                                live[1 - parity].store(0, Ordering::SeqCst);
                            }
                            barrier.wait();
                            epoch += 1;
                            if let Err(payload) = outcome {
                                std::panic::resume_unwind(payload);
                            }
                            if !keep_going {
                                return epoch;
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(epochs) => epochs,
                    // Rethrow the worker's original payload to the caller.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .max()
                .unwrap_or(0)
        });

        let wall_secs = started.elapsed().as_secs_f64();
        let mut reports: Vec<(usize, InstanceReport)> = shards
            .iter()
            .flat_map(|s| s.instances.iter().map(|(i, inst)| (*i, inst.report())))
            .collect();
        reports.sort_by_key(|(i, _)| *i);
        let instances: Vec<InstanceReport> = reports.into_iter().map(|(_, r)| r).collect();
        let checkpoints: u64 = instances.iter().map(|i| i.checkpoints).sum();
        let timing = FleetTiming {
            wall_secs,
            checkpoints_per_sec: if wall_secs > 0.0 { checkpoints as f64 / wall_secs } else { 0.0 },
        };
        FleetReport::aggregate(
            instances,
            n_shards,
            epochs,
            config.rejuvenation.horizon_secs,
            timing,
        )
    }
}
