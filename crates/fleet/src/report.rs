//! Fleet-wide and per-instance outcome reports.

use aging_adapt::{AdaptationStats, RouterStats};
use aging_obs::TelemetrySnapshot;
use aging_tune::TuneStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of operating one instance over the horizon — the fields of the
/// single-instance `RejuvenationReport`, plus fleet extras.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Instance identifier from its spec.
    pub name: String,
    /// Service class from its spec (`"default"` for homogeneous fleets).
    pub class: String,
    /// Policy description.
    pub policy: String,
    /// Operation period covered, seconds.
    pub horizon_secs: f64,
    /// Unplanned crashes suffered.
    pub crashes: u64,
    /// Planned restarts performed.
    pub rejuvenations: u64,
    /// Planned restarts whose frozen-rate counterfactual fork crashed
    /// within the configured window (0 when the check is disabled).
    pub crashes_avoided: u64,
    /// Total downtime, seconds.
    pub downtime_secs: f64,
    /// Fraction of the horizon the service was up.
    pub availability: f64,
    /// Estimated requests lost during downtime.
    pub lost_requests: f64,
    /// Monitoring checkpoints consumed.
    pub checkpoints: u64,
    /// Service epochs started (initial start + every restart).
    pub service_epochs: u64,
    /// Sum of absolute TTF prediction errors over retrospectively labelled
    /// checkpoints (crash epochs against the real crash time, proactive
    /// restarts against the frozen-rate counterfactual fork).
    pub ttf_error_sum_secs: f64,
    /// Number of labelled predictions behind `ttf_error_sum_secs`.
    pub ttf_error_count: u64,
    /// Fleet epoch at whose top the instance joined (0 for the initial
    /// roster; defaults to 0 when deserialising pre-elastic reports).
    #[serde(default)]
    pub joined_epoch: u64,
    /// Fleet epoch during which the instance retired — by ageing past its
    /// horizon or by a scripted/forced retire. `None` when the instance
    /// was still live at the end of the run (and for pre-elastic reports).
    #[serde(default)]
    pub retired_epoch: Option<u64>,
}

impl InstanceReport {
    /// Mean absolute TTF prediction error over this instance's labelled
    /// checkpoints, seconds (0 when nothing could be labelled).
    pub fn mean_ttf_error_secs(&self) -> f64 {
        if self.ttf_error_count > 0 {
            self.ttf_error_sum_secs / self.ttf_error_count as f64
        } else {
            0.0
        }
    }
}

/// One discovered class in a [`DiscoveryReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredClass {
    /// The class name (`discovered-N`).
    pub class: String,
    /// Instances assigned to it when the run ended.
    pub members: usize,
    /// Whether the class was retired (merged away) before the run ended.
    pub retired: bool,
}

/// One partition re-evaluation inside a [`DiscoveryReport`] — the
/// time-resolved view an end-of-run counter cannot give (e.g. "did the
/// steady class drift *after* the split separated it from the shifted
/// one?").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryEvaluation {
    /// Fleet epochs completed when the evaluation ran.
    pub epoch: u64,
    /// Instances with a ready signature.
    pub ready_instances: usize,
    /// Active classes after the evaluation.
    pub active_classes: usize,
    /// Mean silhouette of the adopted clustering (0 for a single class).
    pub silhouette: f64,
    /// Classes created by this evaluation.
    pub new_classes: Vec<String>,
    /// Classes retired by this evaluation.
    pub retired_classes: Vec<String>,
    /// Cumulative instance reassignments after this evaluation.
    pub reassignments: u64,
    /// Router-side drift events per class at evaluation time (classes in
    /// registration order). Snapshotted from live counters, so a batch
    /// still in flight on the bus may land one entry later.
    pub class_drift_events: Vec<(String, u64)>,
    /// Router-side model generations per class at evaluation time.
    pub class_generations: Vec<(String, u64)>,
}

/// What automatic class discovery did during a
/// [`crate::Fleet::run_discovered`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// Every class ever discovered, in creation order (retired included).
    pub classes: Vec<DiscoveredClass>,
    /// The per-evaluation timeline (one entry per reassessment boundary).
    pub evaluations_log: Vec<DiscoveryEvaluation>,
    /// Final class per instance, in spec order — the discovered
    /// partition.
    pub assignment: Vec<String>,
    /// Instance-to-class changes applied over the run (the initial
    /// seeding into `discovered-0` is not counted).
    pub reassignments: u64,
    /// Partition re-evaluations run (one per reassessment boundary).
    pub evaluations: u64,
    /// Accepted splits.
    pub splits: u64,
    /// Accepted merges.
    pub merges: u64,
}

/// Durability counters for a run that wrote a checkpoint journal.
///
/// Snapshot of the [`aging_journal::Journal`] handle at the end of the
/// run; like the other runtime-dependent report fields it is excluded
/// from [`FleetReport`] equality (fsync batching makes the counts
/// timing-sensitive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Records appended over the run.
    pub appended_records: u64,
    /// `fsync` calls issued (batched, so far fewer than records).
    pub fsyncs: u64,
    /// Segment-file rotations.
    pub segment_rotations: u64,
}

/// Membership-change accounting for an elastic run. Unlike the
/// runtime-dependent stats blocks, churn is fully determined by the specs,
/// the plan and the seeds, so it **is** part of [`FleetReport`] equality —
/// two runs of the same elastic fleet must agree on every join and retire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Scripted joins applied.
    pub scripted_joins: u64,
    /// Scripted retires that actually retired a live instance (a retire
    /// scheduled after its target aged out naturally is a no-op).
    pub scripted_retires: u64,
    /// Instances spawned by the autoscale rule.
    pub autoscale_spawns: u64,
    /// Force-retires applied (scripted retires that landed).
    pub forced_retires: u64,
    /// Instances that aged out past their horizon on their own.
    pub natural_retires: u64,
    /// Peak live population over the run (computed from the membership
    /// event log: joins at an epoch land before that epoch's retires).
    pub peak_live: u64,
    /// Live population when the run ended.
    pub final_live: u64,
}

/// Execution counters of the event-driven scheduler. Runtime-dependent
/// (how work interleaves across the worker pool varies between runs), so
/// excluded from [`FleetReport`] equality like `timing`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Worker threads in the scheduler pool.
    pub workers: usize,
    /// Shard-epoch tasks executed.
    pub shard_tasks: u64,
    /// Leader tasks executed (discovery/autoscale boundaries).
    pub leader_steps: u64,
    /// Epochs skipped by fast-forwarding dead shards to their next join
    /// or leader boundary instead of ticking them emptily.
    pub fast_forwarded_epochs: u64,
}

/// Wall-clock performance of a fleet run. Not part of the report's
/// equality: two runs of the same fleet are *equal* when their simulated
/// outcomes agree, however fast the hardware drove them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetTiming {
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Monitoring checkpoints processed per wall-clock second across the
    /// whole fleet — the engine's headline throughput number.
    pub checkpoints_per_sec: f64,
}

/// Aggregated outcome of a fleet run.
///
/// `PartialEq` deliberately ignores [`FleetReport::timing`] and
/// [`FleetReport::adaptation`]: equality means "the same simulated
/// outcome", which is what the determinism guarantee (same specs, seeds
/// and config ⇒ same report) is about — wall-clock speed and the
/// adaptation service's concurrent counters both legitimately vary between
/// otherwise identical runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-instance outcomes, in spec order.
    pub instances: Vec<InstanceReport>,
    /// Worker threads used.
    pub shards: usize,
    /// Lock-step fleet epochs driven.
    pub epochs: u64,
    /// Configured operating horizon, seconds.
    pub horizon_secs: f64,
    /// Total unplanned crashes across the fleet.
    pub crashes: u64,
    /// Total planned restarts across the fleet.
    pub rejuvenations: u64,
    /// Total planned restarts that pre-empted an imminent crash.
    pub crashes_avoided: u64,
    /// Total downtime across the fleet, seconds.
    pub downtime_secs: f64,
    /// Mean per-instance availability.
    pub availability: f64,
    /// Total estimated requests lost to downtime.
    pub lost_requests: f64,
    /// Total monitoring checkpoints consumed.
    pub checkpoints: u64,
    /// Mean absolute TTF prediction error across every labelled checkpoint
    /// of the fleet, seconds (0 when nothing could be labelled).
    pub mean_ttf_error_secs: f64,
    /// Labelled predictions behind `mean_ttf_error_secs`.
    pub ttf_error_count: u64,
    /// Adaptation-service counters for [`crate::Fleet::run_adaptive`] runs
    /// (`None` for frozen-model runs; excluded from equality).
    pub adaptation: Option<AdaptationStats>,
    /// Per-class router counters for [`crate::Fleet::run_routed`] and
    /// [`crate::Fleet::run_discovered`] runs (`None` otherwise; excluded
    /// from equality).
    pub routing: Option<RouterStats>,
    /// The discovered partition for [`crate::Fleet::run_discovered`] runs
    /// (`None` otherwise; excluded from equality — compare it directly in
    /// determinism tests).
    pub discovery: Option<DiscoveryReport>,
    /// Wall-clock performance (excluded from equality).
    pub timing: FleetTiming,
    /// Telemetry snapshot captured when the run finished — present when a
    /// registry was attached via [`crate::Fleet::with_telemetry`], `None`
    /// otherwise (and when deserialising reports written before telemetry
    /// existed; excluded from equality like the other runtime-dependent
    /// fields).
    #[serde(default)]
    pub telemetry: Option<TelemetrySnapshot>,
    /// Checkpoint-journal counters — present when a journal was attached
    /// via [`crate::Fleet::with_journal`], `None` otherwise (excluded
    /// from equality; fsync batching is timing-sensitive).
    #[serde(default)]
    pub journal: Option<JournalStats>,
    /// Policy-search counters — present when a tuner was attached via
    /// [`crate::Fleet::with_tuner`], `None` otherwise. Excluded from
    /// equality: how many search rounds the background thread completed
    /// depends on wall-clock scheduling, and a run whose promotion gate
    /// never fired must compare equal to the same run without a tuner.
    #[serde(default)]
    pub tuning: Option<TuneStats>,
    /// Membership-change accounting — present for elastic runs (a
    /// [`crate::ChurnPlan`] was attached), `None` otherwise and for
    /// pre-elastic reports. *Included* in equality: churn is deterministic
    /// for fixed specs, plan and seeds.
    #[serde(default)]
    pub churn: Option<ChurnStats>,
    /// Event-driven scheduler counters — present when the run executed on
    /// the scheduler (churn attached or [`crate::Fleet::with_scheduler`]),
    /// `None` for lock-step runs and pre-elastic reports. Excluded from
    /// equality: a scheduled run must compare equal to its lock-step
    /// oracle, and task interleaving varies between runs.
    #[serde(default)]
    pub scheduler: Option<SchedulerStats>,
}

impl PartialEq for FleetReport {
    fn eq(&self, other: &Self) -> bool {
        self.instances == other.instances
            && self.shards == other.shards
            && self.epochs == other.epochs
            && self.horizon_secs == other.horizon_secs
            && self.crashes == other.crashes
            && self.rejuvenations == other.rejuvenations
            && self.crashes_avoided == other.crashes_avoided
            && self.downtime_secs == other.downtime_secs
            && self.availability == other.availability
            && self.lost_requests == other.lost_requests
            && self.checkpoints == other.checkpoints
            && self.mean_ttf_error_secs == other.mean_ttf_error_secs
            && self.ttf_error_count == other.ttf_error_count
            && self.churn == other.churn
    }
}

impl FleetReport {
    /// Builds the aggregate from per-instance outcomes.
    pub(crate) fn aggregate(
        instances: Vec<InstanceReport>,
        shards: usize,
        epochs: u64,
        horizon_secs: f64,
        timing: FleetTiming,
    ) -> Self {
        let n = instances.len().max(1) as f64;
        let ttf_error_count: u64 = instances.iter().map(|i| i.ttf_error_count).sum();
        let ttf_error_sum: f64 = instances.iter().map(|i| i.ttf_error_sum_secs).sum();
        FleetReport {
            shards,
            epochs,
            horizon_secs,
            crashes: instances.iter().map(|i| i.crashes).sum(),
            rejuvenations: instances.iter().map(|i| i.rejuvenations).sum(),
            crashes_avoided: instances.iter().map(|i| i.crashes_avoided).sum(),
            downtime_secs: instances.iter().map(|i| i.downtime_secs).sum(),
            availability: instances.iter().map(|i| i.availability).sum::<f64>() / n,
            lost_requests: instances.iter().map(|i| i.lost_requests).sum(),
            checkpoints: instances.iter().map(|i| i.checkpoints).sum(),
            mean_ttf_error_secs: if ttf_error_count > 0 {
                ttf_error_sum / ttf_error_count as f64
            } else {
                0.0
            },
            ttf_error_count,
            adaptation: None,
            routing: None,
            discovery: None,
            instances,
            timing,
            telemetry: None,
            journal: None,
            tuning: None,
            churn: None,
            scheduler: None,
        }
    }

    /// Mean absolute TTF prediction error over the labelled checkpoints of
    /// one service class, seconds (0 when nothing in that class could be
    /// labelled).
    pub fn class_mean_ttf_error_secs(&self, class: &str) -> f64 {
        let (sum, count) = self
            .instances
            .iter()
            .filter(|i| i.class == class)
            .fold((0.0, 0u64), |(s, c), i| (s + i.ttf_error_sum_secs, c + i.ttf_error_count));
        if count > 0 {
            sum / count as f64
        } else {
            0.0
        }
    }

    /// Summarises per-shard barrier-wait timing from the telemetry
    /// snapshot: the shard that spent the most total wall time waiting at
    /// the epoch barrier, plus the fleet-wide mean, p99 (from the merged
    /// per-shard distribution) and max wait. `None` when no telemetry was
    /// attached or no barrier wait was ever recorded.
    pub fn shard_timing_summary(&self) -> Option<String> {
        let telemetry = self.telemetry.as_ref()?;
        let waits = telemetry.histogram_series("fleet_barrier_wait_seconds");
        let slowest =
            waits.iter().filter(|h| h.count > 0).max_by(|a, b| a.sum.total_cmp(&b.sum))?;
        let total_count: u64 = waits.iter().map(|h| h.count).sum();
        let total_sum: f64 = waits.iter().map(|h| h.sum).sum();
        let mean = if total_count > 0 { total_sum / total_count as f64 } else { 0.0 };
        let max = waits.iter().filter_map(|h| h.max_bound()).fold(0.0_f64, f64::max);
        // Tail latency, not just the worst single wait: p99 of the merged
        // fleet-wide distribution (log2-bucket resolution).
        let p99 = telemetry
            .histogram_merged("fleet_barrier_wait_seconds")
            .and_then(|merged| merged.p99())
            .unwrap_or(max);
        Some(format!(
            "slowest shard {} ({:.3} s total barrier wait)  mean wait {:.6} s  \
             p99 wait < {:.6} s  max wait < {:.6} s",
            slowest.label_value().unwrap_or("?"),
            slowest.sum,
            mean,
            p99,
            max
        ))
    }

    /// Serializes the report (including adaptation stats, when present) as
    /// pretty-printed JSON — the machine-readable `BENCH_*.json` format of
    /// the fleet benches and examples.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (none occur for this type in
    /// practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Formats an optional drift EWMA for the text report: the smoothed error
/// in seconds, or `n/a` before any labelled prediction arrived.
fn fmt_ewma(ewma: Option<f64>) -> String {
    match ewma {
        Some(secs) => format!("{secs:.0} s"),
        None => "n/a".into(),
    }
}

/// Formats the effective operating thresholds of one adaptation pipeline.
/// The drift level always prints (a self-tuning policy may move it
/// without publishing a rejuvenation override); the rejuvenation trigger
/// shows its override when one is in force, otherwise that each spec's
/// configured threshold rules.
fn effective_thresholds(stats: &AdaptationStats) -> String {
    match stats.effective_rejuvenation_threshold_secs {
        Some(rejuvenate) => format!(
            "  thresholds drift {:.0} s / rejuvenate {:.0} s",
            stats.effective_error_threshold_secs, rejuvenate
        ),
        None => format!(
            "  thresholds drift {:.0} s / rejuvenate per spec",
            stats.effective_error_threshold_secs
        ),
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet of {} instances across {} shards, {:.1} h horizon ({} lock-step epochs)",
            self.instances.len(),
            self.shards,
            self.horizon_secs / 3600.0,
            self.epochs
        )?;
        writeln!(f, "  availability       {:.4} (mean over instances)", self.availability)?;
        writeln!(
            f,
            "  crashes suffered   {:<8} crashes avoided {}",
            self.crashes, self.crashes_avoided
        )?;
        writeln!(
            f,
            "  rejuvenations      {:<8} downtime        {:.0} s",
            self.rejuvenations, self.downtime_secs
        )?;
        writeln!(f, "  lost requests      {:.0}", self.lost_requests)?;
        writeln!(
            f,
            "  TTF error          {:.0} s mean abs over {} labelled predictions",
            self.mean_ttf_error_secs, self.ttf_error_count
        )?;
        if let Some(adaptation) = &self.adaptation {
            writeln!(
                f,
                "  adaptation         gen {}  retrains {}  drift events {}  \
                 ingested {}  dropped {}  error EWMA {}{}",
                adaptation.generation,
                adaptation.retrains,
                adaptation.drift_events,
                adaptation.ingested_checkpoints,
                adaptation.dropped_checkpoints,
                fmt_ewma(adaptation.error_ewma_secs),
                effective_thresholds(adaptation)
            )?;
        }
        if let Some(routing) = &self.routing {
            writeln!(
                f,
                "  routing            {} classes  {} generations  ingested {}  \
                 dropped {}  unrouted {}",
                routing.classes.len(),
                routing.generations_published,
                routing.ingested_checkpoints,
                routing.dropped_checkpoints,
                routing.unrouted_checkpoints
            )?;
            for entry in &routing.classes {
                writeln!(
                    f,
                    "    class {:<12} gen {}  retrains {}  drift events {}  ingested {}  \
                     dropped {}  error {} (fleet mean {:.0} s){}{}",
                    entry.class,
                    entry.stats.generation,
                    entry.stats.retrains,
                    entry.stats.drift_events,
                    entry.stats.ingested_checkpoints,
                    entry.stats.dropped_checkpoints,
                    fmt_ewma(entry.stats.error_ewma_secs),
                    self.class_mean_ttf_error_secs(entry.class.as_str()),
                    effective_thresholds(&entry.stats),
                    if entry.retired { "  [retired]" } else { "" }
                )?;
            }
        }
        if let Some(discovery) = &self.discovery {
            writeln!(
                f,
                "  discovery          {} classes ({} retired)  {} evaluations  \
                 {} splits  {} merges  {} reassignments",
                discovery.classes.len(),
                discovery.classes.iter().filter(|c| c.retired).count(),
                discovery.evaluations,
                discovery.splits,
                discovery.merges,
                discovery.reassignments
            )?;
            for class in &discovery.classes {
                writeln!(
                    f,
                    "    {:<18} {} members{}",
                    class.class,
                    class.members,
                    if class.retired { "  [retired]" } else { "" }
                )?;
            }
        }
        if let Some(tuning) = &self.tuning {
            writeln!(
                f,
                "  policy search      {} rounds  {} candidates  {} accepted  {} promotions",
                tuning.rounds, tuning.candidates, tuning.accepted, tuning.promotions
            )?;
            for class in &tuning.classes {
                writeln!(
                    f,
                    "    class {:<12} rounds {}  promotions {}  incumbent objective {}",
                    class.class,
                    class.rounds,
                    class.promotions,
                    match class.incumbent_objective_secs {
                        Some(secs) => format!("{secs:.0} s"),
                        None => "n/a".into(),
                    }
                )?;
            }
        }
        if let Some(churn) = &self.churn {
            writeln!(
                f,
                "  churn              {} joins  {} retires  {} autoscale spawns  \
                 {} forced  {} natural  peak live {}  final live {}",
                churn.scripted_joins,
                churn.scripted_retires,
                churn.autoscale_spawns,
                churn.forced_retires,
                churn.natural_retires,
                churn.peak_live,
                churn.final_live
            )?;
        }
        if let Some(scheduler) = &self.scheduler {
            writeln!(
                f,
                "  scheduler          {} workers  {} shard tasks  {} leader steps  \
                 {} epochs fast-forwarded",
                scheduler.workers,
                scheduler.shard_tasks,
                scheduler.leader_steps,
                scheduler.fast_forwarded_epochs
            )?;
        }
        if let Some(timing) = self.shard_timing_summary() {
            writeln!(f, "  shard timing       {timing}")?;
        }
        write!(
            f,
            "  throughput         {} checkpoints in {:.2} s wall = {:.0} checkpoints/s",
            self.checkpoints, self.timing.wall_secs, self.timing.checkpoints_per_sec
        )
    }
}
