//! One fleet-operated deployment: a simulator advanced checkpoint by
//! checkpoint, with rejuvenation-policy accounting.
//!
//! The state machine is `aging_core::rejuvenation::evaluate_policy`
//! unrolled into per-tick steps: where the single-instance study drives one
//! simulator through an inner loop, a fleet [`Instance`] performs exactly
//! one `Simulator::step` per fleet epoch and carries the epoch/policy state
//! across ticks. Counters are accumulated in the same order, so a
//! one-instance fleet reproduces the single-instance
//! `RejuvenationReport` bit for bit (see `tests/properties.rs`).
//!
//! On top of the policy loop the instance keeps a per-service-epoch
//! *prediction history* — `(checkpoint uptime, predicted TTF)` plus,
//! when the fleet runs adaptively, the feature rows themselves. When the
//! epoch ends the history is labelled retrospectively: a crash labels
//! every checkpoint with its exact time to failure (and queues the rows
//! for the adaptation service), a proactive restart labels it against the
//! frozen-rate counterfactual fork. Both feed the instance's TTF-error
//! accounting; only crash epochs — the paper's "failure executions" —
//! become training data, while each proactive restart queues a single
//! *monitor-only* observation (the restart-triggering prediction vs the
//! fork) so drift detection and self-tuning threshold policies stay fed
//! once adaptation has made crashes rare. Every label carries the model
//! generation that made its prediction.

use crate::config::{FleetConfig, InstanceSpec};
use crate::report::InstanceReport;
use aging_adapt::discovery::SignatureAccumulator;
use aging_adapt::{CheckpointBatch, LabelledCheckpoint, ServiceClass};
use aging_core::{clamp_ttf, RejuvenationPolicy};
use aging_ml::FeatureMatrix;
use aging_monitor::{FeatureExtractor, FeatureSet, TTF_CAP_SECS};
use aging_testbed::{Simulator, StepOutcome};

/// What an instance did during one fleet tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Tick {
    /// Nothing left to do: the instance reached its operating horizon.
    Retired,
    /// A checkpoint was consumed; no prediction is needed (reactive or
    /// time-based policy, or an epoch boundary).
    Advanced,
    /// A checkpoint was consumed and its feature row was appended to the
    /// shard's batch matrix; the caller must follow up with
    /// [`Instance::apply_prediction`].
    NeedsPrediction,
}

/// How one service epoch ended, for retrospective labelling.
enum EpochEnd {
    /// Unplanned crash at this uptime: exact TTF labels.
    Crashed { crash_uptime: f64 },
    /// Proactive restart whose counterfactual fork reported this time to
    /// crash from the restart instant, saturating at `cap` (the configured
    /// counterfactual horizon).
    Rejuvenated { fork_ttf: f64, at_uptime: f64, cap: f64 },
    /// Scenario finished or horizon reached: no ground truth, no labels.
    Unlabelled,
}

/// A single simulated deployment plus its fleet-side operating state.
#[derive(Debug)]
pub struct Instance {
    spec: InstanceSpec,
    extractor: FeatureExtractor,
    /// Catalogue indices of the feature set, cached so the per-checkpoint
    /// projection is a gather instead of repeated name lookups.
    feature_indices: Vec<usize>,
    /// Index of the instance's class in the fleet's class table — the
    /// shard uses it to pick this instance's batch matrix and model pin.
    /// Fixed for routed runs; discovered runs re-point it at epoch
    /// boundaries ([`Instance::set_class`]).
    class_idx: usize,
    /// The class outgoing checkpoint batches are tagged with. Equal to
    /// `spec.class` except under class discovery, where it tracks the
    /// instance's current discovered class.
    current_class: ServiceClass,
    /// Aging-signature accumulator, present only when the fleet runs
    /// under class discovery.
    discovery: Option<SignatureAccumulator>,
    // Epoch-of-service state (reset on every restart).
    sim: Option<Box<Simulator>>,
    epoch: u64,
    epochs_started: u64,
    seen: usize,
    below: usize,
    pending_uptime: f64,
    // Per-epoch prediction history for retrospective labelling.
    history_uptimes: Vec<f64>,
    history_predictions: Vec<f64>,
    history_rows: Vec<Vec<f64>>,
    /// Model generation behind each prediction (kept only while
    /// collecting, like the rows): training labels carry it so the
    /// adaptation side can attribute errors to the generation that made
    /// them — an epoch straddling a hot swap mixes generations.
    history_generations: Vec<u64>,
    outbox: Vec<LabelledCheckpoint>,
    // Operating-period accounting, mirroring `evaluate_policy`.
    elapsed: f64,
    crashes: u64,
    rejuvenations: u64,
    crashes_avoided: u64,
    downtime: f64,
    throughput_sum: f64,
    throughput_n: u64,
    checkpoints: u64,
    ttf_error_sum: f64,
    ttf_error_count: u64,
    retired: bool,
    // Membership lifetime, in fleet epochs. The lock-step engine records
    // the same transitions as the event-driven scheduler, so the fields
    // participate in report equality (part of the oracle guarantee).
    joined_epoch: u64,
    retired_epoch: Option<u64>,
    retired_forced: bool,
    retirement_announced: bool,
}

impl Instance {
    pub(crate) fn new(
        spec: InstanceSpec,
        features: &FeatureSet,
        class_idx: usize,
        joined_epoch: u64,
    ) -> Self {
        Instance {
            extractor: FeatureExtractor::new(features.window()),
            feature_indices: features.catalogue_indices(),
            class_idx,
            current_class: spec.class.clone(),
            discovery: None,
            spec,
            sim: None,
            epoch: 0,
            epochs_started: 0,
            seen: 0,
            below: 0,
            pending_uptime: 0.0,
            history_uptimes: Vec::new(),
            history_predictions: Vec::new(),
            history_rows: Vec::new(),
            history_generations: Vec::new(),
            outbox: Vec::new(),
            elapsed: 0.0,
            crashes: 0,
            rejuvenations: 0,
            crashes_avoided: 0,
            downtime: 0.0,
            throughput_sum: 0.0,
            throughput_n: 0,
            checkpoints: 0,
            ttf_error_sum: 0.0,
            ttf_error_count: 0,
            retired: false,
            joined_epoch,
            retired_epoch: None,
            retired_forced: false,
            retirement_announced: false,
        }
    }

    /// Advances one checkpoint (or epoch-boundary event). Returns
    /// [`Tick::NeedsPrediction`] when the predictive policy needs a TTF for
    /// this checkpoint; the row has then been appended to `matrix` and the
    /// shard batches it with its siblings. With `collect` set, completed
    /// crash epochs queue labelled training data for the adaptation bus.
    /// `fleet_epoch` is the fleet epoch driving this tick — recorded as
    /// the retirement epoch when this tick crosses the horizon.
    pub(crate) fn advance(
        &mut self,
        config: &FleetConfig,
        matrix: &mut FeatureMatrix,
        collect: bool,
        fleet_epoch: u64,
    ) -> Tick {
        if self.retired {
            return Tick::Retired;
        }
        let horizon = config.rejuvenation.horizon_secs;
        if self.sim.is_none() {
            // Outer `while elapsed < horizon` of the single-instance study.
            if self.elapsed >= horizon {
                self.retired = true;
                self.retired_epoch = Some(fleet_epoch);
                return Tick::Retired;
            }
            // A fleet-level workload shift takes effect at service-epoch
            // boundaries: restarts pick up the new regime, epochs in
            // flight keep theirs.
            let scenario = match &self.spec.shift {
                Some(shift) if self.elapsed >= shift.after_secs => &shift.scenario,
                _ => &self.spec.scenario,
            };
            self.sim =
                Some(Box::new(Simulator::new(scenario, self.spec.seed.wrapping_add(self.epoch))));
            self.epochs_started += 1;
            self.extractor.reset();
            self.seen = 0;
            self.below = 0;
        }
        let sim = self.sim.as_mut().expect("simulator created above");
        match sim.step() {
            StepOutcome::Checkpoint(sample) => {
                self.seen += 1;
                self.throughput_sum += sample.throughput_rps;
                self.throughput_n += 1;
                self.checkpoints += 1;
                let uptime = sample.time_secs;
                if self.elapsed + uptime >= horizon {
                    self.elapsed += uptime;
                    self.retired = true;
                    self.retired_epoch = Some(fleet_epoch);
                    self.end_epoch(EpochEnd::Unlabelled, false);
                    return Tick::Retired;
                }
                match self.spec.policy {
                    RejuvenationPolicy::TimeBased { interval_secs } if uptime >= interval_secs => {
                        self.rejuvenate(uptime, config, collect);
                        Tick::Advanced
                    }
                    RejuvenationPolicy::Predictive { .. } => {
                        let full = self.extractor.push(&sample);
                        // During warm-up the trigger discards the prediction
                        // unconditionally (`below` is still 0), so skip the
                        // inference entirely — the sliding-window state above
                        // is what has to keep advancing. Behaviour-identical
                        // to predicting and ignoring the result.
                        if self.seen <= config.rejuvenation.warmup_checkpoints {
                            return Tick::Advanced;
                        }
                        self.pending_uptime = uptime;
                        matrix.push_row_with(|buf| {
                            buf.extend(self.feature_indices.iter().map(|&i| full[i]));
                        });
                        Tick::NeedsPrediction
                    }
                    _ => Tick::Advanced,
                }
            }
            StepOutcome::Crashed(crash) => {
                self.crashes += 1;
                self.downtime += config.rejuvenation.crash_downtime_secs;
                self.elapsed += crash.time_secs + config.rejuvenation.crash_downtime_secs;
                self.end_epoch(EpochEnd::Crashed { crash_uptime: crash.time_secs }, collect);
                Tick::Advanced
            }
            StepOutcome::Finished => {
                let uptime = sim.time_ms() as f64 / 1000.0;
                self.elapsed += uptime.max(1.0);
                self.end_epoch(EpochEnd::Unlabelled, false);
                Tick::Advanced
            }
        }
    }

    /// Second phase of a predictive tick: feeds the batched TTF prediction
    /// back into the debounced threshold trigger. `row` is the feature row
    /// this instance appended during [`Instance::advance`], handed back by
    /// the shard so crash epochs can be replayed as training data.
    ///
    /// `threshold_override` is the class's effective rejuvenation
    /// threshold published by a self-tuning
    /// [`aging_adapt::ThresholdPolicy`] (read once per epoch from the
    /// class's model service); `None` — always, under the fixed policy —
    /// leaves the spec's configured threshold in force, bit for bit.
    pub(crate) fn apply_prediction(
        &mut self,
        raw_prediction: f64,
        row: &[f64],
        config: &FleetConfig,
        collect: bool,
        threshold_override: Option<f64>,
        model_generation: u64,
    ) {
        let RejuvenationPolicy::Predictive { threshold_secs, consecutive } = self.spec.policy
        else {
            unreachable!("apply_prediction is only called after NeedsPrediction");
        };
        let threshold_secs = threshold_override.unwrap_or(threshold_secs);
        debug_assert!(
            self.seen > config.rejuvenation.warmup_checkpoints,
            "warm-up checkpoints never request predictions"
        );
        let prediction = clamp_ttf(raw_prediction);
        self.history_uptimes.push(self.pending_uptime);
        self.history_predictions.push(prediction);
        if collect {
            self.history_rows.push(row.to_vec());
            self.history_generations.push(model_generation);
        }
        if prediction < threshold_secs {
            self.below += 1;
            if self.below >= consecutive {
                self.rejuvenate(self.pending_uptime, config, collect);
            }
        } else {
            self.below = 0;
        }
    }

    fn rejuvenate(&mut self, uptime: f64, config: &FleetConfig, collect: bool) {
        let mut end = EpochEnd::Unlabelled;
        if config.counterfactual_horizon_secs > 0.0 {
            let sim = self.sim.as_ref().expect("rejuvenation happens mid-epoch");
            let ttf = sim.frozen_time_to_crash(config.counterfactual_horizon_secs);
            if ttf < config.counterfactual_horizon_secs {
                self.crashes_avoided += 1;
            }
            end = EpochEnd::Rejuvenated {
                fork_ttf: ttf,
                at_uptime: uptime,
                cap: config.counterfactual_horizon_secs,
            };
        }
        self.rejuvenations += 1;
        self.downtime += config.rejuvenation.rejuvenation_downtime_secs;
        self.elapsed += uptime + config.rejuvenation.rejuvenation_downtime_secs;
        self.end_epoch(end, collect);
    }

    /// Closes the current service epoch: labels the prediction history
    /// retrospectively, folds the errors into the TTF-error accounting,
    /// queues crash-epoch training data when collecting, and clears the
    /// epoch state.
    fn end_epoch(&mut self, end: EpochEnd, collect: bool) {
        match end {
            EpochEnd::Crashed { crash_uptime } => {
                for (i, (&t, &pred)) in
                    self.history_uptimes.iter().zip(&self.history_predictions).enumerate()
                {
                    let actual = (crash_uptime - t).clamp(0.0, TTF_CAP_SECS);
                    self.ttf_error_sum += (pred - actual).abs();
                    self.ttf_error_count += 1;
                    if collect {
                        let cp = LabelledCheckpoint {
                            features: std::mem::take(&mut self.history_rows[i]),
                            ttf_secs: actual,
                            predicted_ttf_secs: Some(pred),
                            predicted_generation: Some(self.history_generations[i]),
                            monitor_only: false,
                        };
                        if let Some(acc) = &mut self.discovery {
                            acc.observe(&cp);
                        }
                        self.outbox.push(cp);
                    }
                }
            }
            EpochEnd::Rejuvenated { fork_ttf, at_uptime, cap } => {
                // The frozen-rate fork gives the time to crash from the
                // restart instant, saturating at the counterfactual
                // horizon; earlier checkpoints sit `at_uptime - t` further
                // out. Errors are measured inside that window — both sides
                // clamped to the horizon — so "prediction and truth both
                // far from crashing" scores zero instead of penalising the
                // cap.
                for (&t, &pred) in self.history_uptimes.iter().zip(&self.history_predictions) {
                    let actual = (fork_ttf + (at_uptime - t).max(0.0)).min(cap);
                    let error = (pred.min(cap) - actual).abs();
                    self.ttf_error_sum += error;
                    self.ttf_error_count += 1;
                    // The signature accumulator is per instance, so it can
                    // afford what the fleet-wide bus cannot: every
                    // counterfactually labelled checkpoint of a proactive
                    // restart. Restart epochs dominate under a well-tuned
                    // policy — without them a healthy instance would never
                    // produce a signature.
                    if let Some(acc) = self.discovery.as_mut() {
                        acc.observe_error(error);
                    }
                }
                if let Some(acc) = self.discovery.as_mut() {
                    for row in &self.history_rows {
                        acc.observe_row(row);
                    }
                }
                // One monitor-only observation per proactive restart: the
                // prediction that *triggered* it, against the fork's
                // counterfactual crash time. This keeps drift detection
                // and self-tuning policies fed once adaptation has
                // (correctly) made crash epochs rare, without flooding
                // the analysis side with correlated within-epoch samples
                // — and the horizon-capped label never enters the
                // training buffer.
                if collect && !self.history_predictions.is_empty() {
                    let pred = *self.history_predictions.last().expect("non-empty");
                    // Not fed to the signature accumulator: the per-
                    // checkpoint loop above already observed this exact
                    // error (its last entry is the trigger checkpoint),
                    // and a duplicate would bias the signature's
                    // quantiles toward restart-trigger errors.
                    self.outbox.push(LabelledCheckpoint::monitor_observation(
                        fork_ttf.min(cap),
                        pred.min(cap),
                        self.history_generations.last().copied(),
                    ));
                }
            }
            EpochEnd::Unlabelled => {}
        }
        self.history_uptimes.clear();
        self.history_predictions.clear();
        self.history_rows.clear();
        self.history_generations.clear();
        self.sim = None;
        self.epoch += 1;
        if let Some(acc) = &mut self.discovery {
            // A restart resets every resource; the next epoch's first row
            // must not contribute a growth delta against this epoch's last.
            acc.epoch_boundary();
        }
    }

    /// Index of this instance's service class in the fleet's class table.
    pub(crate) fn class_idx(&self) -> usize {
        self.class_idx
    }

    /// The instance's spec name.
    pub(crate) fn name(&self) -> &str {
        &self.spec.name
    }

    /// The class outgoing batches are tagged with (spec class, or the
    /// current discovered class).
    pub(crate) fn class_name(&self) -> &ServiceClass {
        &self.current_class
    }

    /// Retires the instance early — a churn plan's scripted retire or a
    /// simulated deprovisioning. The service epoch in flight (if any) is
    /// closed without labels: a deprovisioned process leaves no crash
    /// ground truth. Returns whether the call actually retired a live
    /// instance (`false` when it already aged out).
    pub(crate) fn force_retire(&mut self, fleet_epoch: u64) -> bool {
        if self.retired {
            return false;
        }
        self.end_epoch(EpochEnd::Unlabelled, false);
        self.retired = true;
        self.retired_epoch = Some(fleet_epoch);
        self.retired_forced = true;
        true
    }

    /// One-shot retirement announcement: `Some((epoch, forced))` the
    /// first time it is called after the instance retired, `None`
    /// thereafter. The scheduler sweeps this after every shard epoch to
    /// journal/trace each retirement exactly once.
    pub(crate) fn fresh_retirement(&mut self) -> Option<(u64, bool)> {
        if self.retired && !self.retirement_announced {
            self.retirement_announced = true;
            Some((self.retired_epoch.unwrap_or(0), self.retired_forced))
        } else {
            None
        }
    }

    /// Attaches a class-discovery signature accumulator and places the
    /// instance in the seed discovered class (run-discovered construction;
    /// the spec's operator class, if any, is deliberately ignored).
    pub(crate) fn enable_discovery(&mut self, acc: SignatureAccumulator, seed_class: ServiceClass) {
        self.discovery = Some(acc);
        self.current_class = seed_class;
    }

    /// Re-points the instance at a (possibly newly discovered) class.
    /// Called at fleet-epoch boundaries only — the same pin discipline as
    /// the models, so one epoch's batch is never split across classes.
    pub(crate) fn set_class(&mut self, class_idx: usize, class: ServiceClass) {
        self.class_idx = class_idx;
        self.current_class = class;
    }

    /// The instance's aging-signature vector, when discovery is enabled
    /// and enough labelled errors have been observed.
    pub(crate) fn signature(&self) -> Option<Vec<f64>> {
        self.discovery.as_ref().and_then(SignatureAccumulator::signature)
    }

    /// Drains labelled training checkpoints queued by completed crash
    /// epochs (empty unless the fleet runs adaptively), tagged with the
    /// instance's service class so the router trains the right model.
    pub(crate) fn take_labelled(&mut self) -> Option<CheckpointBatch> {
        if self.outbox.is_empty() {
            return None;
        }
        Some(CheckpointBatch {
            source: self.spec.name.clone(),
            class: self.current_class.clone(),
            checkpoints: std::mem::take(&mut self.outbox),
        })
    }

    /// The instance's final accounting, shaped exactly like the
    /// single-instance `RejuvenationReport` plus fleet extras.
    pub(crate) fn report(&self) -> InstanceReport {
        let horizon = self.elapsed.max(1.0);
        let mean_rps = if self.throughput_n > 0 {
            self.throughput_sum / self.throughput_n as f64
        } else {
            0.0
        };
        InstanceReport {
            name: self.spec.name.clone(),
            class: self.current_class.to_string(),
            policy: self.spec.policy.label(),
            horizon_secs: horizon,
            crashes: self.crashes,
            rejuvenations: self.rejuvenations,
            crashes_avoided: self.crashes_avoided,
            downtime_secs: self.downtime,
            availability: ((horizon - self.downtime) / horizon).clamp(0.0, 1.0),
            lost_requests: mean_rps * self.downtime,
            checkpoints: self.checkpoints,
            service_epochs: self.epochs_started,
            ttf_error_sum_secs: self.ttf_error_sum,
            ttf_error_count: self.ttf_error_count,
            joined_epoch: self.joined_epoch,
            retired_epoch: self.retired_epoch,
        }
    }
}
