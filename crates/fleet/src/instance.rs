//! One fleet-operated deployment: a simulator advanced checkpoint by
//! checkpoint, with rejuvenation-policy accounting.
//!
//! The state machine is `aging_core::rejuvenation::evaluate_policy`
//! unrolled into per-tick steps: where the single-instance study drives one
//! simulator through an inner loop, a fleet [`Instance`] performs exactly
//! one `Simulator::step` per fleet epoch and carries the epoch/policy state
//! across ticks. Counters are accumulated in the same order, so a
//! one-instance fleet reproduces the single-instance
//! `RejuvenationReport` bit for bit (see `tests/properties.rs`).

use crate::config::{FleetConfig, InstanceSpec};
use crate::report::InstanceReport;
use aging_core::{clamp_ttf, RejuvenationPolicy};
use aging_monitor::{FeatureExtractor, FeatureSet};
use aging_testbed::{Simulator, StepOutcome};

/// What an instance did during one fleet tick.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tick {
    /// Nothing left to do: the instance reached its operating horizon.
    Retired,
    /// A checkpoint was consumed; no prediction is needed (reactive or
    /// time-based policy, or an epoch boundary).
    Advanced,
    /// A checkpoint was consumed and this feature row awaits a batched
    /// prediction; the caller must follow up with
    /// [`Instance::apply_prediction`].
    NeedsPrediction(Vec<f64>),
}

/// A single simulated deployment plus its fleet-side operating state.
#[derive(Debug)]
pub struct Instance {
    spec: InstanceSpec,
    extractor: FeatureExtractor,
    // Epoch-of-service state (reset on every restart).
    sim: Option<Box<Simulator>>,
    epoch: u64,
    epochs_started: u64,
    seen: usize,
    below: usize,
    pending_uptime: f64,
    // Operating-period accounting, mirroring `evaluate_policy`.
    elapsed: f64,
    crashes: u64,
    rejuvenations: u64,
    crashes_avoided: u64,
    downtime: f64,
    throughput_sum: f64,
    throughput_n: u64,
    checkpoints: u64,
    retired: bool,
}

impl Instance {
    pub(crate) fn new(spec: InstanceSpec, features: &FeatureSet) -> Self {
        Instance {
            extractor: FeatureExtractor::new(features.window()),
            spec,
            sim: None,
            epoch: 0,
            epochs_started: 0,
            seen: 0,
            below: 0,
            pending_uptime: 0.0,
            elapsed: 0.0,
            crashes: 0,
            rejuvenations: 0,
            crashes_avoided: 0,
            downtime: 0.0,
            throughput_sum: 0.0,
            throughput_n: 0,
            checkpoints: 0,
            retired: false,
        }
    }

    /// Advances one checkpoint (or epoch-boundary event). Returns
    /// [`Tick::NeedsPrediction`] when the predictive policy needs a TTF for
    /// this checkpoint; the shard batches those rows across its instances.
    pub(crate) fn advance(&mut self, config: &FleetConfig, features: &FeatureSet) -> Tick {
        if self.retired {
            return Tick::Retired;
        }
        let horizon = config.rejuvenation.horizon_secs;
        if self.sim.is_none() {
            // Outer `while elapsed < horizon` of the single-instance study.
            if self.elapsed >= horizon {
                self.retired = true;
                return Tick::Retired;
            }
            self.sim = Some(Box::new(Simulator::new(
                &self.spec.scenario,
                self.spec.seed.wrapping_add(self.epoch),
            )));
            self.epochs_started += 1;
            self.extractor.reset();
            self.seen = 0;
            self.below = 0;
        }
        let sim = self.sim.as_mut().expect("simulator created above");
        match sim.step() {
            StepOutcome::Checkpoint(sample) => {
                self.seen += 1;
                self.throughput_sum += sample.throughput_rps;
                self.throughput_n += 1;
                self.checkpoints += 1;
                let uptime = sample.time_secs;
                if self.elapsed + uptime >= horizon {
                    self.elapsed += uptime;
                    self.retired = true;
                    self.sim = None;
                    return Tick::Retired;
                }
                match self.spec.policy {
                    RejuvenationPolicy::TimeBased { interval_secs } if uptime >= interval_secs => {
                        self.rejuvenate(uptime, config);
                        Tick::Advanced
                    }
                    RejuvenationPolicy::Predictive { .. } => {
                        let full = self.extractor.push(&sample);
                        // During warm-up the trigger discards the prediction
                        // unconditionally (`below` is still 0), so skip the
                        // inference entirely — the sliding-window state above
                        // is what has to keep advancing. Behaviour-identical
                        // to predicting and ignoring the result.
                        if self.seen <= config.rejuvenation.warmup_checkpoints {
                            return Tick::Advanced;
                        }
                        self.pending_uptime = uptime;
                        Tick::NeedsPrediction(features.project(&full))
                    }
                    _ => Tick::Advanced,
                }
            }
            StepOutcome::Crashed(crash) => {
                self.crashes += 1;
                self.downtime += config.rejuvenation.crash_downtime_secs;
                self.elapsed += crash.time_secs + config.rejuvenation.crash_downtime_secs;
                self.end_epoch();
                Tick::Advanced
            }
            StepOutcome::Finished => {
                let uptime = sim.time_ms() as f64 / 1000.0;
                self.elapsed += uptime.max(1.0);
                self.end_epoch();
                Tick::Advanced
            }
        }
    }

    /// Second phase of a predictive tick: feeds the batched TTF prediction
    /// back into the debounced threshold trigger.
    pub(crate) fn apply_prediction(&mut self, raw_prediction: f64, config: &FleetConfig) {
        let RejuvenationPolicy::Predictive { threshold_secs, consecutive } = self.spec.policy
        else {
            unreachable!("apply_prediction is only called after NeedsPrediction");
        };
        debug_assert!(
            self.seen > config.rejuvenation.warmup_checkpoints,
            "warm-up checkpoints never request predictions"
        );
        let prediction = clamp_ttf(raw_prediction);
        if prediction < threshold_secs {
            self.below += 1;
            if self.below >= consecutive {
                self.rejuvenate(self.pending_uptime, config);
            }
        } else {
            self.below = 0;
        }
    }

    fn rejuvenate(&mut self, uptime: f64, config: &FleetConfig) {
        if config.counterfactual_horizon_secs > 0.0 {
            let sim = self.sim.as_ref().expect("rejuvenation happens mid-epoch");
            let ttf = sim.frozen_time_to_crash(config.counterfactual_horizon_secs);
            if ttf < config.counterfactual_horizon_secs {
                self.crashes_avoided += 1;
            }
        }
        self.rejuvenations += 1;
        self.downtime += config.rejuvenation.rejuvenation_downtime_secs;
        self.elapsed += uptime + config.rejuvenation.rejuvenation_downtime_secs;
        self.end_epoch();
    }

    fn end_epoch(&mut self) {
        self.sim = None;
        self.epoch += 1;
    }

    /// The instance's final accounting, shaped exactly like the
    /// single-instance `RejuvenationReport` plus fleet extras.
    pub(crate) fn report(&self) -> InstanceReport {
        let horizon = self.elapsed.max(1.0);
        let mean_rps = if self.throughput_n > 0 {
            self.throughput_sum / self.throughput_n as f64
        } else {
            0.0
        };
        InstanceReport {
            name: self.spec.name.clone(),
            policy: self.spec.policy.label(),
            horizon_secs: horizon,
            crashes: self.crashes,
            rejuvenations: self.rejuvenations,
            crashes_avoided: self.crashes_avoided,
            downtime_secs: self.downtime,
            availability: ((horizon - self.downtime) / horizon).clamp(0.0, 1.0),
            lost_requests: mean_rps * self.downtime,
            checkpoints: self.checkpoints,
            service_epochs: self.epochs_started,
        }
    }
}
