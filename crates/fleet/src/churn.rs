//! Instance churn: scripted joins/retires and load-driven autoscaling.
//!
//! A [`ChurnPlan`] makes the population elastic: instances can join the
//! fleet mid-run (a deploy, a scale-out), be retired early (a spot
//! reclaim, a scale-in), or be spawned on demand by an [`AutoscaleRule`]
//! that tops the fleet back up whenever the live population falls below a
//! floor. Churn runs always execute on the event-driven scheduler
//! (`crate::scheduler`) — the lock-step barrier engine assumes a fixed
//! population and is kept as the churn-free determinism oracle.
//!
//! Membership changes take effect at the **top of a fleet epoch** on the
//! owning shard, the same boundary discipline as model pins and class
//! assignments: a joiner participates in the epoch it joins, a scripted
//! retire removes the instance before it consumes that epoch's
//! checkpoint. Every change is journalled
//! (`aging_journal::JournalRecord::{InstanceJoined, InstanceRetired}`)
//! and traced, so a replay can fold the journal back into the exact live
//! roster.

use crate::config::{validate_spec, FleetError, InstanceSpec};
use serde::{Deserialize, Serialize};

/// One scripted join: `spec` enters the fleet at the top of fleet epoch
/// `at_epoch` (the initial roster is epoch 0, so scripted joins start at
/// epoch 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJoin {
    /// Fleet epoch at whose top the instance joins (must be ≥ 1).
    pub at_epoch: u64,
    /// The deployment that joins.
    pub spec: InstanceSpec,
}

/// One scripted retire: the named instance is force-retired at the top of
/// fleet epoch `at_epoch` — before it consumes that epoch's checkpoint.
/// A no-op if the instance already aged out naturally by then.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledRetire {
    /// Fleet epoch at whose top the instance is retired (must be ≥ 1).
    pub at_epoch: u64,
    /// Name of the instance to retire (initial roster or a scripted
    /// joiner).
    pub instance: String,
}

/// Load-driven autoscaling: at every `evaluate_every_epochs` boundary the
/// scheduler's leader task compares the live population against
/// `min_live` and spawns clones of `template` to close the gap, up to
/// `max_spawns` over the whole run.
///
/// Spawn `k` is named `{template.name}-as{k}` and seeded
/// `template.seed + k`, so autoscaled runs are deterministic for a fixed
/// seed. Like every membership change, spawns land at the top of the
/// boundary epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleRule {
    /// Fleet epochs between autoscale evaluations (must be ≥ 1).
    pub evaluate_every_epochs: u64,
    /// Target floor for the live population (must be ≥ 1 — a floor of 0
    /// would never spawn).
    pub min_live: usize,
    /// Hard cap on spawns over the whole run (must be ≥ 1; bounds the
    /// run's roster, so discovery slots can be preallocated).
    pub max_spawns: usize,
    /// The deployment each spawn clones (name and seed are derived per
    /// spawn).
    pub template: InstanceSpec,
}

/// Scripted membership changes plus optional autoscaling for one fleet
/// run. Attach with [`crate::Fleet::with_churn`]; an attached plan always
/// selects the event-driven scheduler.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Scripted joins, applied in `at_epoch` order.
    #[serde(default)]
    pub joins: Vec<ScheduledJoin>,
    /// Scripted retires, applied in `at_epoch` order.
    #[serde(default)]
    pub retires: Vec<ScheduledRetire>,
    /// Optional load-driven autoscaling.
    #[serde(default)]
    pub autoscale: Option<AutoscaleRule>,
}

impl ChurnPlan {
    /// An empty plan (builder seed).
    #[must_use]
    pub fn new() -> Self {
        ChurnPlan::default()
    }

    /// Adds a scripted join (builder-style).
    #[must_use]
    pub fn join(mut self, at_epoch: u64, spec: InstanceSpec) -> Self {
        self.joins.push(ScheduledJoin { at_epoch, spec });
        self
    }

    /// Adds a scripted retire (builder-style).
    #[must_use]
    pub fn retire(mut self, at_epoch: u64, instance: impl Into<String>) -> Self {
        self.retires.push(ScheduledRetire { at_epoch, instance: instance.into() });
        self
    }

    /// Sets the autoscale rule (builder-style).
    #[must_use]
    pub fn autoscale(mut self, rule: AutoscaleRule) -> Self {
        self.autoscale = Some(rule);
        self
    }

    /// Whether the plan changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.retires.is_empty() && self.autoscale.is_none()
    }

    /// Scripted joins in application order: sorted by epoch, original
    /// order preserved within an epoch.
    pub(crate) fn sorted_joins(&self) -> Vec<ScheduledJoin> {
        let mut joins = self.joins.clone();
        joins.sort_by_key(|j| j.at_epoch);
        joins
    }

    /// The autoscale spawn pool, in spawn order: `max_spawns` clones of
    /// the template with derived names and seeds. Empty without a rule.
    pub(crate) fn autoscale_pool(&self) -> Vec<InstanceSpec> {
        let Some(rule) = &self.autoscale else {
            return Vec::new();
        };
        (0..rule.max_spawns)
            .map(|k| {
                let mut spec = rule.template.clone();
                spec.name = format!("{}-as{k}", rule.template.name);
                spec.seed = rule.template.seed.wrapping_add(k as u64);
                spec
            })
            .collect()
    }

    /// Validates the plan against the fleet's initial roster.
    pub(crate) fn validate(&self, initial: &[InstanceSpec]) -> Result<(), FleetError> {
        let mut names: Vec<&str> = initial.iter().map(|s| s.name.as_str()).collect();
        for join in &self.joins {
            if join.at_epoch == 0 {
                return Err(FleetError::InvalidParameter(format!(
                    "churn join `{}`: epoch 0 is the initial roster; joins start at epoch 1",
                    join.spec.name
                )));
            }
            validate_spec(&join.spec)?;
            if names.contains(&join.spec.name.as_str()) {
                return Err(FleetError::InvalidParameter(format!(
                    "churn join `{}`: instance name already in the roster",
                    join.spec.name
                )));
            }
            names.push(join.spec.name.as_str());
        }
        for retire in &self.retires {
            if retire.at_epoch == 0 {
                return Err(FleetError::InvalidParameter(format!(
                    "churn retire `{}`: retires start at epoch 1",
                    retire.instance
                )));
            }
            if !names.contains(&retire.instance.as_str()) {
                return Err(FleetError::InvalidParameter(format!(
                    "churn retire `{}`: no such instance in the roster",
                    retire.instance
                )));
            }
            if let Some(join) = self.joins.iter().find(|j| j.spec.name == retire.instance) {
                if retire.at_epoch <= join.at_epoch {
                    return Err(FleetError::InvalidParameter(format!(
                        "churn retire `{}` at epoch {} precedes its join at epoch {}",
                        retire.instance, retire.at_epoch, join.at_epoch
                    )));
                }
            }
        }
        if let Some(rule) = &self.autoscale {
            if rule.evaluate_every_epochs == 0 {
                return Err(FleetError::InvalidParameter(
                    "autoscale evaluation interval must be at least one epoch".into(),
                ));
            }
            if rule.min_live == 0 {
                return Err(FleetError::InvalidParameter(
                    "autoscale floor must be at least 1 (a floor of 0 never spawns)".into(),
                ));
            }
            if rule.max_spawns == 0 {
                return Err(FleetError::InvalidParameter(
                    "autoscale spawn cap must be at least 1 (use no rule instead)".into(),
                ));
            }
            validate_spec(&rule.template)?;
            for spec in self.autoscale_pool() {
                if names.contains(&spec.name.as_str()) {
                    return Err(FleetError::InvalidParameter(format!(
                        "autoscale spawn `{}` collides with a roster name",
                        spec.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The full *potential* roster of an elastic run, in global-index order:
/// the initial specs (join epoch 0), scripted joins sorted by epoch, then
/// the autoscale pool (join epoch decided at run time, `u64::MAX` here).
/// Discovery slots, journalled partitions and report ordering all index
/// this roster, so joined instances always occupy a contiguous prefix.
pub(crate) fn potential_roster(
    initial: &[InstanceSpec],
    churn: Option<&ChurnPlan>,
) -> Vec<(u64, InstanceSpec, bool)> {
    let mut roster: Vec<(u64, InstanceSpec, bool)> =
        initial.iter().map(|spec| (0, spec.clone(), false)).collect();
    if let Some(plan) = churn {
        for join in plan.sorted_joins() {
            roster.push((join.at_epoch, join.spec, false));
        }
        for spec in plan.autoscale_pool() {
            roster.push((u64::MAX, spec, true));
        }
    }
    roster
}
