//! Elastic-engine guarantees: the event-driven scheduler is a bit-exact
//! drop-in for the lock-step engine on churn-free fleets (the determinism
//! oracle), churn runs are bit-reproducible for a fixed seed, and the
//! elastic report fields stay backward-compatible with pre-elastic
//! artifacts.

use aging_core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use aging_fleet::{
    AutoscaleRule, ChurnPlan, Fleet, FleetConfig, FleetReport, InstanceSpec, SchedulerConfig,
};
use aging_monitor::FeatureSet;
use aging_testbed::{MemLeakSpec, Scenario};

fn crashing_scenario() -> Scenario {
    Scenario::builder("leaky")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build()
}

fn trained_predictor() -> AgingPredictor {
    AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 77).unwrap()
}

fn config(shards: usize, horizon_hours: f64) -> FleetConfig {
    FleetConfig {
        shards,
        rejuvenation: RejuvenationConfig {
            horizon_secs: horizon_hours * 3600.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The determinism oracle: on a churn-free fleet, the event-driven
/// scheduler must reproduce the lock-step engine's `FleetReport`
/// bit-exactly — same epochs, same per-instance accounting, same
/// everything equality covers — at every shard count, worker count and
/// lead bound.
#[test]
fn churn_free_scheduled_run_matches_lock_step_bit_exactly() {
    let predictor = trained_predictor();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    for shards in [1usize, 2, 4] {
        let lock_step = Fleet::uniform(&crashing_scenario(), policy, 8, 100, config(shards, 3.0))
            .unwrap()
            .run_with_predictor(&predictor);
        for scheduler in [
            SchedulerConfig::default(),
            SchedulerConfig { workers: 1, max_lead_epochs: 0 },
            SchedulerConfig { workers: 0, max_lead_epochs: 2 },
        ] {
            let scheduled =
                Fleet::uniform(&crashing_scenario(), policy, 8, 100, config(shards, 3.0))
                    .unwrap()
                    .with_scheduler(scheduler)
                    .run_with_predictor(&predictor);
            assert_eq!(
                scheduled, lock_step,
                "shards={shards} scheduler={scheduler:?}: the oracle must hold"
            );
            // Bit-level spot checks on the strongest fields, belt and
            // braces over derived `PartialEq`.
            for (s, l) in scheduled.instances.iter().zip(&lock_step.instances) {
                assert_eq!(s.downtime_secs.to_bits(), l.downtime_secs.to_bits(), "{}", s.name);
                assert_eq!(s.availability.to_bits(), l.availability.to_bits(), "{}", s.name);
                assert_eq!(s.joined_epoch, l.joined_epoch, "{}", s.name);
                assert_eq!(s.retired_epoch, l.retired_epoch, "{}", s.name);
            }
            assert_eq!(scheduled.epochs, lock_step.epochs, "shards={shards}");
            // The scheduled run reports its execution stats (excluded
            // from equality — they describe the engine, not the fleet).
            let stats = scheduled.scheduler.expect("scheduled runs carry scheduler stats");
            assert!(stats.shard_tasks > 0);
            assert!(lock_step.scheduler.is_none(), "lock-step runs carry none");
        }
    }
}

fn churn_fleet(scenario: &Scenario, shards: usize) -> Fleet {
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let spec = |name: &str, seed| InstanceSpec::new(name, scenario.clone(), policy, seed);
    let specs: Vec<InstanceSpec> = (0..6).map(|i| spec(&format!("web-{i}"), 100 + i)).collect();
    let plan = ChurnPlan::new()
        .join(40, spec("late-0", 900))
        .join(40, spec("late-1", 901))
        .join(120, spec("late-2", 902))
        .retire(80, "web-1")
        .retire(80, "late-0")
        .retire(200, "web-4")
        .autoscale(AutoscaleRule {
            evaluate_every_epochs: 60,
            min_live: 6,
            max_spawns: 4,
            template: spec("spare", 1000),
        });
    Fleet::new(specs, config(shards, 3.0)).unwrap().with_churn(plan).unwrap()
}

/// A churn run — scripted joins and retires plus autoscaling — must be
/// bit-reproducible for a fixed seed, including the churn accounting
/// (which *is* part of report equality).
#[test]
fn churn_run_is_bit_reproducible_for_a_fixed_seed() {
    let predictor = trained_predictor();
    let scenario = crashing_scenario();
    let a = churn_fleet(&scenario, 3).run_with_predictor(&predictor);
    let b = churn_fleet(&scenario, 3).run_with_predictor(&predictor);
    assert_eq!(a, b, "fixed seeds must make churn runs bit-reproducible");
    let churn = a.churn.expect("churn plans report churn stats");
    assert_eq!(churn, b.churn.unwrap());
    assert_eq!(churn.scripted_joins, 3, "{churn:?}");
    assert_eq!(churn.scripted_retires, 3, "{churn:?}");
    assert!(churn.peak_live >= 6, "{churn:?}");
    // Membership lands in the per-instance accounting too.
    let by_name = |name: &str| {
        a.instances.iter().find(|i| i.name == name).unwrap_or_else(|| panic!("{name} reported"))
    };
    assert_eq!(a.instances.len() as u64, 6 + 3 + churn.autoscale_spawns);
    assert_eq!(by_name("web-0").joined_epoch, 0);
    assert_eq!(by_name("late-0").joined_epoch, 40);
    assert_eq!(by_name("late-0").retired_epoch, Some(80), "scripted retire at 80");
    assert_eq!(by_name("web-1").retired_epoch, Some(80), "scripted retire at 80");
    // The forced retires pull the live population under the autoscale
    // floor, so spares must have spawned at a later boundary.
    assert!(churn.autoscale_spawns > 0, "{churn:?}");
    let spawn = a.instances.iter().find(|i| i.name.starts_with("spare-as")).unwrap();
    assert!(spawn.joined_epoch > 0 && spawn.joined_epoch % 60 == 0, "{spawn:?}");
}

/// Shard count is still pure parallelism under churn: membership changes
/// land at fixed epochs on deterministic shards, so the simulated outcome
/// is shard-count-invariant.
#[test]
fn churn_outcome_is_shard_count_invariant() {
    let predictor = trained_predictor();
    let scenario = crashing_scenario();
    let one = churn_fleet(&scenario, 1).run_with_predictor(&predictor);
    let three = churn_fleet(&scenario, 3).run_with_predictor(&predictor);
    assert_eq!(one.instances, three.instances);
    assert_eq!(one.churn, three.churn);
    assert_eq!(one.epochs, three.epochs);
}

/// Serde back-compat (the fixture half of the oracle): a pre-elastic
/// `BENCH_*.json` report — no `churn`/`scheduler` report fields, no
/// `joined_epoch`/`retired_epoch` instance fields — must still
/// deserialise via `#[serde(default)]`.
#[test]
fn pre_elastic_reports_still_deserialise() {
    let predictor = trained_predictor();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let report = Fleet::uniform(&crashing_scenario(), policy, 2, 7, config(2, 2.0))
        .unwrap()
        .run_with_predictor(&predictor);
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"churn\":null"), "plain runs serialise null churn");
    assert!(json.contains("\"scheduler\":null"));
    assert!(json.contains("\"joined_epoch\":0"));
    // A pre-elastic artifact is this JSON with the elastic fields absent
    // altogether. Strip them the way the old serialiser never wrote them.
    let mut legacy = json.replace(",\"churn\":null", "").replace(",\"scheduler\":null", "");
    legacy = legacy.replace(",\"joined_epoch\":0", "");
    while let Some(at) = legacy.find(",\"retired_epoch\":") {
        let rest = &legacy[at + 1..];
        let end = rest.find([',', '}']).expect("value terminated");
        legacy.replace_range(at..at + 1 + end, "");
    }
    for field in ["churn", "scheduler", "joined_epoch", "retired_epoch"] {
        assert!(!legacy.contains(field), "field {field} must really be gone");
    }
    let parsed: FleetReport = serde_json::from_str(&legacy).unwrap();
    assert!(parsed.churn.is_none() && parsed.scheduler.is_none());
    // Everything the old report carried parses to the same values; the
    // defaulted membership fields read as epoch-0 joins, never retired.
    assert_eq!(parsed.epochs, report.epochs);
    assert_eq!(parsed.crashes, report.crashes);
    assert_eq!(parsed.instances.len(), report.instances.len());
    for (p, r) in parsed.instances.iter().zip(&report.instances) {
        assert_eq!(p.name, r.name);
        assert_eq!(p.availability.to_bits(), r.availability.to_bits());
        assert_eq!(p.joined_epoch, 0);
        assert_eq!(p.retired_epoch, None);
    }
    // And the modern round trip is lossless.
    let roundtrip: FleetReport = serde_json::from_str(&json).unwrap();
    assert_eq!(roundtrip, report);
}

/// The elastic engine's observability: live-population gauge, scheduler
/// queue-depth histogram and the leader-window histogram land in the
/// report's telemetry snapshot.
#[test]
fn elastic_telemetry_lands_in_the_report() {
    let predictor = trained_predictor();
    let registry = aging_obs::Registry::shared();
    let report = churn_fleet(&crashing_scenario(), 2)
        .with_telemetry(std::sync::Arc::clone(&registry))
        .run_with_predictor(&predictor);
    let telemetry = report.telemetry.as_ref().expect("registry attached");
    assert_eq!(telemetry.counter("fleet_epochs_total", None), Some(report.epochs));
    let depth = telemetry.histogram("fleet_scheduler_queue_depth", None).expect("queue depth");
    assert!(depth.count > 0, "every dequeue records the queue depth");
    let gauge = telemetry.gauge("fleet_instances_live", None).expect("live gauge");
    assert_eq!(gauge as u64, report.churn.unwrap().final_live, "gauge holds the final population");
    let leader = telemetry.histogram("fleet_leader_step_seconds", None).expect("leader window");
    assert_eq!(leader.count, report.scheduler.unwrap().leader_steps, "one sample per leader step");
}
