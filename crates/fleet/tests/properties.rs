//! Fleet engine guarantees: determinism across runs and shard counts, and
//! exact equivalence between a 1-instance fleet and the single-instance
//! rejuvenation study it generalises.

use aging_core::rejuvenation::evaluate_policy;
use aging_core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use aging_fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec};
use aging_monitor::FeatureSet;
use aging_testbed::{MemLeakSpec, Scenario};

fn crashing_scenario() -> Scenario {
    Scenario::builder("leaky")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build()
}

fn trained_predictor() -> AgingPredictor {
    AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 77).unwrap()
}

fn config(shards: usize, horizon_hours: f64) -> FleetConfig {
    FleetConfig {
        shards,
        rejuvenation: RejuvenationConfig {
            horizon_secs: horizon_hours * 3600.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn same_seeds_and_shards_produce_identical_reports() {
    let predictor = trained_predictor();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let run = || {
        Fleet::uniform(&crashing_scenario(), policy, 8, 100, config(4, 3.0))
            .unwrap()
            .run_with_predictor(&predictor)
    };
    let a = run();
    let b = run();
    // FleetReport equality covers every simulated outcome (and excludes
    // wall-clock timing, which legitimately varies).
    assert_eq!(a, b);
    // Timing is excluded from equality but must still be sane.
    for report in [&a, &b] {
        assert!(
            report.timing.checkpoints_per_sec.is_finite()
                && report.timing.checkpoints_per_sec > 0.0,
            "throughput must be finite and positive: {:?}",
            report.timing
        );
    }
    // Spot-check the strongest fields really are bit-identical.
    for (x, y) in a.instances.iter().zip(&b.instances) {
        assert_eq!(x.downtime_secs.to_bits(), y.downtime_secs.to_bits(), "{}", x.name);
        assert_eq!(x.availability.to_bits(), y.availability.to_bits(), "{}", x.name);
        assert_eq!(x.lost_requests.to_bits(), y.lost_requests.to_bits(), "{}", x.name);
    }
}

#[test]
fn reports_without_the_telemetry_field_still_deserialise() {
    let predictor = trained_predictor();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let report = Fleet::uniform(&crashing_scenario(), policy, 2, 7, config(2, 2.0))
        .unwrap()
        .run_with_predictor(&predictor);
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"telemetry\":null"), "untelemetered runs serialise a null snapshot");
    // A pre-telemetry BENCH_*.json artifact is this report without the
    // field at all; `#[serde(default)]` must keep it parseable.
    let legacy = json.replace(",\"telemetry\":null", "");
    assert!(!legacy.contains("telemetry"), "the field must really be gone");
    let parsed: FleetReport = serde_json::from_str(&legacy).unwrap();
    assert_eq!(parsed, report, "legacy artifacts must parse to the same outcome");
    assert!(parsed.telemetry.is_none());
    // And the modern round trip is lossless.
    let roundtrip: FleetReport = serde_json::from_str(&json).unwrap();
    assert_eq!(roundtrip, report);
}

#[test]
fn shard_count_does_not_change_the_outcome() {
    // Instances are independent; sharding is pure parallelism. The same
    // fleet over 1, 3 and 8 shards must produce the same simulated outcome
    // (only `shards` itself and the wall-clock timing differ).
    let predictor = trained_predictor();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let run = |shards| {
        Fleet::uniform(&crashing_scenario(), policy, 8, 2000, config(shards, 3.0))
            .unwrap()
            .run_with_predictor(&predictor)
    };
    let one = run(1);
    let three = run(3);
    let eight = run(8);
    assert_eq!(one.instances, three.instances);
    assert_eq!(one.instances, eight.instances);
    assert_eq!(one.crashes, eight.crashes);
    assert_eq!(one.epochs, eight.epochs, "lock-step epoch count is shard-independent");
}

/// A 1-instance fleet must reproduce `evaluate_policy` exactly — same
/// crash/restart counts and bit-identical downtime, availability and
/// lost-work accounting — for every policy family.
#[test]
fn single_instance_fleet_matches_evaluate_policy_exactly() {
    let predictor = trained_predictor();
    let scenario = crashing_scenario();
    let rejuvenation = RejuvenationConfig { horizon_secs: 4.0 * 3600.0, ..Default::default() };
    let policies = [
        (RejuvenationPolicy::Reactive, false),
        (RejuvenationPolicy::TimeBased { interval_secs: 900.0 }, false),
        (RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 }, true),
    ];
    for (policy, needs_predictor) in policies {
        for seed in [1u64, 3, 42] {
            let single = evaluate_policy(
                &scenario,
                policy,
                needs_predictor.then_some(&predictor),
                &rejuvenation,
                seed,
            )
            .unwrap();
            let fleet_config = FleetConfig {
                shards: 1,
                rejuvenation,
                // The counterfactual fork adds an extra diagnostic; it must
                // not perturb the shared accounting either way, so keep it
                // on for the comparison.
                counterfactual_horizon_secs: 3600.0,
            };
            let report = Fleet::new(
                vec![InstanceSpec::new("solo", scenario.clone(), policy, seed)],
                fleet_config,
            )
            .unwrap()
            .run_with_predictor(&predictor);
            let inst = &report.instances[0];
            let ctx = format!("policy {policy:?} seed {seed}");
            assert_eq!(inst.policy, single.policy, "{ctx}");
            assert_eq!(inst.crashes, single.crashes, "{ctx}");
            assert_eq!(inst.rejuvenations, single.rejuvenations, "{ctx}");
            assert_eq!(
                inst.horizon_secs.to_bits(),
                single.horizon_secs.to_bits(),
                "{ctx}: horizon {} vs {}",
                inst.horizon_secs,
                single.horizon_secs
            );
            assert_eq!(
                inst.downtime_secs.to_bits(),
                single.downtime_secs.to_bits(),
                "{ctx}: downtime {} vs {}",
                inst.downtime_secs,
                single.downtime_secs
            );
            assert_eq!(
                inst.availability.to_bits(),
                single.availability.to_bits(),
                "{ctx}: availability {} vs {}",
                inst.availability,
                single.availability
            );
            assert_eq!(
                inst.lost_requests.to_bits(),
                single.lost_requests.to_bits(),
                "{ctx}: lost work {} vs {}",
                inst.lost_requests,
                single.lost_requests
            );
        }
    }
}

#[test]
fn mixed_policy_fleet_reports_each_instance_under_its_own_policy() {
    let predictor = trained_predictor();
    let scenario = crashing_scenario();
    let specs = vec![
        InstanceSpec::new("reactive", scenario.clone(), RejuvenationPolicy::Reactive, 7),
        InstanceSpec::new(
            "time-based",
            scenario.clone(),
            RejuvenationPolicy::TimeBased { interval_secs: 900.0 },
            7,
        ),
        InstanceSpec::new(
            "predictive",
            scenario,
            RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 },
            7,
        ),
    ];
    let report = Fleet::new(specs, config(3, 2.0)).unwrap().run_with_predictor(&predictor);
    let [reactive, time_based, predictive] = &report.instances[..] else {
        panic!("expected three instance reports");
    };
    assert!(reactive.crashes >= 1);
    assert_eq!(reactive.rejuvenations, 0);
    assert_eq!(time_based.crashes, 0, "15-minute restarts pre-empt a ~40-minute TTF");
    assert!(time_based.rejuvenations >= 6);
    assert!(predictive.crashes <= reactive.crashes);
    assert!(
        predictive.rejuvenations < time_based.rejuvenations,
        "the predictive policy restarts far less often than blind time-based: {} vs {}",
        predictive.rejuvenations,
        time_based.rejuvenations
    );
}
