//! Flight-recorder guarantees at fleet scope: the traced event sequence
//! is deterministic across shard counts (modulo timestamps), and an
//! adaptive run resolves a complete causal chain for every generation it
//! publishes.

use aging_adapt::{AdaptConfig, AdaptiveService, DriftConfig, ServiceClass};
use aging_core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use aging_fleet::{Fleet, FleetConfig, InstanceSpec, WorkloadShift};
use aging_ml::m5p::M5pLearner;
use aging_ml::{DynLearner, Regressor};
use aging_monitor::FeatureSet;
use aging_obs::{Event, EventKind, FlightRecorder};
use aging_testbed::{MemLeakSpec, Scenario};
use std::sync::Arc;
use std::time::Duration;

fn leaky(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

fn config(shards: usize, horizon_hours: f64) -> FleetConfig {
    FleetConfig {
        shards,
        rejuvenation: RejuvenationConfig {
            horizon_secs: horizon_hours * 3600.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Everything about an event except its timestamp — the comparison axis
/// for cross-run determinism.
fn shape(e: &Event) -> (String, Option<String>, Option<u32>, Option<u64>, Option<u64>) {
    (format!("{:?}", e.kind), e.class.clone(), e.shard, e.generation, e.parent)
}

#[test]
fn frozen_runs_trace_identically_across_shard_counts() {
    let scenario = leaky("leaky", 100, 15);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), FeatureSet::exp42(), 77).unwrap();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let run = |shards: usize| {
        let recorder = FlightRecorder::shared();
        let report = Fleet::uniform(&scenario, policy, 8, 100, config(shards, 3.0))
            .unwrap()
            .with_trace(Arc::clone(&recorder))
            .run_with_predictor(&predictor);
        (recorder.trace(), report)
    };
    let (one, report_one) = run(1);
    let (two, _) = run(2);
    let (four, _) = run(4);

    // A frozen fleet adapts nothing: the trace is exactly the leader's
    // per-epoch marks, one per completed epoch, in order.
    assert_eq!(one.len() as u64, report_one.epochs, "one EpochCompleted per epoch");
    assert_eq!(one.dropped, 0);
    for (i, event) in one.events.iter().enumerate() {
        assert!(
            matches!(event.kind, EventKind::EpochCompleted { epoch } if epoch == i as u64),
            "event {i} must be EpochCompleted {{ epoch: {i} }}: {event:?}"
        );
        assert!(event.parent.is_none() && event.class.is_none() && event.shard.is_none());
    }

    // Same spec + same seeds ⇒ the same event sequence no matter how the
    // fleet is sharded (timestamps excluded — wall clock legitimately
    // varies).
    let shapes = |t: &aging_obs::Trace| t.events.iter().map(shape).collect::<Vec<_>>();
    assert_eq!(shapes(&one), shapes(&two), "1 vs 2 shards");
    assert_eq!(shapes(&one), shapes(&four), "1 vs 4 shards");
}

#[test]
fn same_run_traces_identically_twice() {
    let scenario = leaky("leaky", 100, 15);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), FeatureSet::exp42(), 77).unwrap();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let run = || {
        let recorder = FlightRecorder::shared();
        Fleet::uniform(&scenario, policy, 6, 33, config(3, 2.0))
            .unwrap()
            .with_trace(Arc::clone(&recorder))
            .run_with_predictor(&predictor);
        recorder.trace().events.iter().map(shape).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// The ISSUE acceptance shape at test scope: an adaptive run under a
/// workload shift retrains, and every generation it published resolves a
/// complete drift→trigger→refit→publish chain through
/// [`aging_obs::Trace::causal_chain`].
#[test]
fn adaptive_run_resolves_complete_causal_chains() {
    let features = FeatureSet::exp42();
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let predictor = AgingPredictor::train(
        &[leaky("train-75", 75, 75), leaky("train-100", 100, 75)],
        features.clone(),
        42,
    )
    .unwrap();
    let horizon_secs = 5.0 * 3600.0;
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let specs: Vec<InstanceSpec> = (0..12)
        .map(|i| InstanceSpec {
            name: format!("svc-{i:02}"),
            scenario: before.clone(),
            policy,
            seed: 5_000 + i as u64,
            shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
            class: Default::default(),
        })
        .collect();

    let recorder = FlightRecorder::shared();
    let learner: Arc<dyn DynLearner> = Arc::new(M5pLearner::paper_default());
    let initial: Arc<dyn Regressor> = Arc::new(predictor.model().clone());
    let service = AdaptiveService::builder(learner, features.variables().to_vec(), initial)
        .config(
            AdaptConfig::builder()
                .drift(DriftConfig {
                    error_threshold_secs: 600.0,
                    min_observations: 30,
                    cooldown_observations: 90,
                    ..Default::default()
                })
                .buffer_capacity(2048)
                .min_buffer_to_retrain(90)
                .build(),
        )
        .trace(Arc::clone(&recorder))
        .spawn();

    let fleet_config = FleetConfig {
        shards: 2,
        rejuvenation: RejuvenationConfig { horizon_secs, ..Default::default() },
        ..Default::default()
    };
    Fleet::new(specs, fleet_config)
        .unwrap()
        .with_trace(Arc::clone(&recorder))
        .run_adaptive(&service, &features);
    assert!(service.quiesce(Duration::from_secs(30)), "the retrainer must drain");
    let stats = service.shutdown();
    assert!(stats.generations_published > 0, "the shift must force a retrain: {stats:?}");

    let trace = recorder.trace();
    assert_eq!(trace.dropped, 0, "a short run must not overflow the default ring");
    let class = ServiceClass::default();
    let publishes = trace.publishes(class.as_str());
    assert_eq!(publishes.len() as u64, stats.generations_published);
    for publish in &publishes {
        let generation = publish.generation.expect("publishes carry a generation");
        let chain = trace.causal_chain(class.as_str(), generation);
        let has = |pred: fn(&EventKind) -> bool| chain.iter().any(|e| pred(&e.kind));
        assert!(
            has(|k| matches!(k, EventKind::DriftObserved { .. } | EventKind::TriggerArmed { .. })),
            "gen {generation}: chain must root in drift or an armed trigger: {chain:#?}"
        );
        assert!(
            has(|k| matches!(k, EventKind::TriggerFired { .. })),
            "gen {generation}: chain must record the trigger firing: {chain:#?}"
        );
        assert!(
            has(|k| matches!(k, EventKind::RefitStarted { .. }))
                && has(|k| matches!(k, EventKind::RefitFinished { ok: true })),
            "gen {generation}: chain must span the refit: {chain:#?}"
        );
        // When a shard pinned this generation, its swap must parent on
        // the publish and land in the chain.
        let swapped = trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SwapApplied) && e.generation == Some(generation));
        assert!(
            !swapped || has(|k| matches!(k, EventKind::SwapApplied)),
            "gen {generation}: applied swaps must ride the chain: {chain:#?}"
        );
    }
    // At least one published generation was actually pinned by a worker
    // mid-run — the audit trail reaches the shard that consumed the model.
    assert!(
        trace.events.iter().any(|e| matches!(e.kind, EventKind::SwapApplied)),
        "some published generation must have been swapped into a shard"
    );
}
