//! The streaming (on-line) time-to-failure predictor.
//!
//! In deployment the analysis subsystem receives one monitoring checkpoint
//! every 15 seconds and must emit an updated TTF prediction immediately —
//! M5P was chosen partly because "it has low training and prediction costs
//! and we will eventually want on-line processing" (Section 1).
//! [`OnlineTtfPredictor`] carries the sliding-window feature state across
//! checkpoints and applies any fitted [`Regressor`].

use aging_ml::Regressor;
use aging_monitor::{FeatureExtractor, FeatureSet, TTF_CAP_SECS};
use aging_testbed::MetricSample;

/// Clamps a raw model output into the physically meaningful TTF interval
/// `[0, TTF_CAP_SECS]`.
///
/// NaN maps to the cap: degenerate leaf models can emit it (and
/// `f64::clamp` *propagates* NaN), and a prediction with no information
/// must read as "no crash in sight", never as an imminent-crash `0.0`
/// that would trigger a spurious rejuvenation. Infinities keep their
/// direction — `-∞` is the limit of "crash overdue" and saturates to
/// `0.0` exactly like any large finite negative prediction, `+∞` to the
/// cap. Shared by [`OnlineTtfPredictor`] and the fleet engine's batched
/// path so both produce identical outputs.
pub fn clamp_ttf(prediction: f64) -> f64 {
    if prediction.is_nan() {
        TTF_CAP_SECS
    } else {
        prediction.clamp(0.0, TTF_CAP_SECS)
    }
}

/// Streams checkpoints through a fitted model, maintaining the derived
/// (sliding-window) variables between calls.
#[derive(Debug)]
pub struct OnlineTtfPredictor<'m> {
    model: &'m dyn Regressor,
    features: FeatureSet,
    extractor: FeatureExtractor,
    predictions: usize,
}

impl<'m> OnlineTtfPredictor<'m> {
    /// Creates a streaming predictor for `model`, which must have been
    /// trained on `features`.
    pub fn new(model: &'m dyn Regressor, features: FeatureSet) -> Self {
        let extractor = FeatureExtractor::new(features.window());
        OnlineTtfPredictor { model, features, extractor, predictions: 0 }
    }

    /// Consumes one checkpoint and returns the predicted time to failure in
    /// seconds.
    ///
    /// Predictions are clamped to `[0, TTF_CAP_SECS]`: a time to failure is
    /// physically non-negative, and the training labels saturate at the
    /// paper's 3-hour "infinite" cap, so values outside that interval are
    /// pure leaf-model extrapolation artefacts. NaN (which degenerate
    /// leaf models can emit, and which `clamp` would propagate) saturates
    /// to the cap — see [`clamp_ttf`].
    pub fn observe(&mut self, sample: &MetricSample) -> f64 {
        let full = self.extractor.push(sample);
        let row = self.features.project(&full);
        self.predictions += 1;
        clamp_ttf(self.model.predict(&row))
    }

    /// Number of checkpoints consumed so far.
    pub fn observed(&self) -> usize {
        self.predictions
    }

    /// Hot-swaps the model mid-stream, keeping the sliding-window feature
    /// state intact.
    ///
    /// This is the single-instance form of the fleet's generation swap: an
    /// adaptation service retrains on recent checkpoints and publishes a
    /// new model, and the streaming predictor continues from the very next
    /// checkpoint without losing its derived-variable windows (the new
    /// model was trained on the same feature pipeline, so the window state
    /// remains valid).
    ///
    /// The new model must consume the same [`FeatureSet`] as the old one.
    pub fn swap_model(&mut self, model: &'m dyn Regressor) {
        self.model = model;
    }

    /// Resets the sliding-window state (after a rejuvenation: the restarted
    /// process shares no history with the old one).
    pub fn reset(&mut self) {
        self.extractor.reset();
    }

    /// The feature set in use.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_ml::{linreg::LinRegLearner, Learner};
    use aging_monitor::{build_dataset, TTF_CAP_SECS};
    use aging_testbed::{MemLeakSpec, Scenario};

    #[test]
    fn streaming_predictions_match_batch_evaluation() {
        let scenario = Scenario::builder("s")
            .emulated_browsers(100)
            .memory_leak(MemLeakSpec::new(15))
            .run_to_crash()
            .build();
        let trace = scenario.run(3);
        let fs = FeatureSet::exp42();
        let ds = build_dataset(&[&trace], &fs, TTF_CAP_SECS);
        let model = LinRegLearner::default().fit(&ds).unwrap();

        // Stream the same trace: predictions must equal row-by-row batch
        // predictions because the extractor state is identical.
        let mut online = OnlineTtfPredictor::new(&model, fs);
        for (i, sample) in trace.samples.iter().enumerate() {
            let streamed = online.observe(sample);
            let batch =
                aging_ml::Regressor::predict(&model, ds.row(i).values()).clamp(0.0, TTF_CAP_SECS);
            assert!(
                (streamed - batch).abs() < 1e-9,
                "checkpoint {i}: streamed {streamed} vs batch {batch}"
            );
        }
        assert_eq!(online.observed(), trace.samples.len());
    }

    /// A stub model that always returns the same raw value, for exercising
    /// the clamping path with degenerate outputs.
    #[derive(Debug)]
    struct ConstModel(f64);

    impl Regressor for ConstModel {
        fn predict(&self, _x: &[f64]) -> f64 {
            self.0
        }

        fn name(&self) -> &'static str {
            "Const"
        }
    }

    #[test]
    fn non_finite_predictions_saturate_to_the_cap() {
        // Regression test: `f64::clamp` propagates NaN, so a degenerate
        // leaf model used to leak NaN out of `observe`, poisoning every
        // downstream consumer (policy debouncing, MAE accumulation).
        let trace = Scenario::builder("s").emulated_browsers(20).duration_minutes(5).build().run(1);
        for (raw, expected) in
            [(f64::NAN, TTF_CAP_SECS), (f64::INFINITY, TTF_CAP_SECS), (f64::NEG_INFINITY, 0.0)]
        {
            let model = ConstModel(raw);
            let mut online = OnlineTtfPredictor::new(&model, FeatureSet::exp42());
            let got = online.observe(&trace.samples[0]);
            assert_eq!(got, expected, "raw {raw} must saturate to {expected}, got {got}");
        }
        // Finite values keep the plain clamp semantics.
        assert_eq!(clamp_ttf(-5.0), 0.0);
        assert_eq!(clamp_ttf(123.0), 123.0);
        assert_eq!(clamp_ttf(TTF_CAP_SECS + 1.0), TTF_CAP_SECS);
    }

    #[test]
    fn swap_model_keeps_window_state() {
        // Two constant models: after the swap, predictions come from the
        // new model immediately, and the window state is untouched (the
        // swap is invisible to the extractor).
        let trace = Scenario::builder("s").emulated_browsers(20).duration_minutes(5).build().run(2);
        let (a, b) = (ConstModel(100.0), ConstModel(200.0));
        let mut online = OnlineTtfPredictor::new(&a, FeatureSet::exp42());
        assert_eq!(online.observe(&trace.samples[0]), 100.0);
        online.swap_model(&b);
        assert_eq!(online.observe(&trace.samples[1]), 200.0);
        assert_eq!(online.observed(), 2);
    }

    #[test]
    fn reset_clears_window_state() {
        let scenario = Scenario::builder("s").emulated_browsers(50).duration_minutes(10).build();
        let trace = scenario.run(4);
        let fs = FeatureSet::exp42();
        let ds = build_dataset(&[&trace], &fs, TTF_CAP_SECS);
        let model = LinRegLearner::default().fit(&ds).unwrap();
        let mut online = OnlineTtfPredictor::new(&model, fs);
        let first = online.observe(&trace.samples[0]);
        for s in &trace.samples[1..10] {
            online.observe(s);
        }
        online.reset();
        let again = online.observe(&trace.samples[0]);
        assert_eq!(first, again, "after reset the predictor behaves as fresh");
    }
}
