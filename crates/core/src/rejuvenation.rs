//! Software rejuvenation policies driven by the predictor.
//!
//! The paper's introduction divides rejuvenation strategies into
//! *time-based* ("applied regularly and at predetermined time intervals")
//! and *predictive/proactive* ("system metrics are continuously monitored
//! and the rejuvenation action is triggered when a crash … seems to
//! approach"), arguing the predictive approach reduces the number of
//! rejuvenation actions. The TR extension \[29\] builds exactly this layer on
//! top of the M5P predictor; this module reproduces it and quantifies the
//! trade-off with availability and lost-work accounting.

use crate::{AgingPredictor, CoreError};
use aging_testbed::{Scenario, Simulator, StepOutcome};
use serde::{Deserialize, Serialize};

/// When to restart the server proactively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejuvenationPolicy {
    /// Never rejuvenate: crashes are handled reactively.
    Reactive,
    /// Restart every `interval_secs` of uptime, unconditionally.
    TimeBased {
        /// Uptime between planned restarts, seconds.
        interval_secs: f64,
    },
    /// Restart when the predicted TTF stays below `threshold_secs` for
    /// `consecutive` checkpoints (debouncing a single noisy prediction).
    Predictive {
        /// TTF threshold, seconds.
        threshold_secs: f64,
        /// Checkpoints the prediction must stay below threshold.
        consecutive: usize,
    },
}

impl RejuvenationPolicy {
    /// Human-readable label used in [`RejuvenationReport::policy`] (and the
    /// fleet engine's per-instance reports).
    pub fn label(&self) -> String {
        match self {
            RejuvenationPolicy::Reactive => "reactive".into(),
            RejuvenationPolicy::TimeBased { interval_secs } => {
                format!("time-based({interval_secs}s)")
            }
            RejuvenationPolicy::Predictive { threshold_secs, consecutive } => {
                format!("predictive(<{threshold_secs}s x{consecutive})")
            }
        }
    }
}

/// Costs and horizon of a rejuvenation study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejuvenationConfig {
    /// Downtime of a planned restart, seconds (a clean Tomcat restart).
    pub rejuvenation_downtime_secs: f64,
    /// Downtime of an unplanned crash, seconds (detection + restart +
    /// recovery of lost work — the expensive case).
    pub crash_downtime_secs: f64,
    /// Total operation period to simulate, seconds.
    pub horizon_secs: f64,
    /// Checkpoints to ignore before the predictive trigger may fire (the
    /// sliding windows need to fill).
    pub warmup_checkpoints: usize,
}

impl Default for RejuvenationConfig {
    fn default() -> Self {
        RejuvenationConfig {
            rejuvenation_downtime_secs: 60.0,
            crash_downtime_secs: 600.0,
            horizon_secs: 24.0 * 3600.0,
            warmup_checkpoints: 12,
        }
    }
}

/// Outcome of operating a policy over the horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejuvenationReport {
    /// Policy description.
    pub policy: String,
    /// Operation period covered, seconds.
    pub horizon_secs: f64,
    /// Unplanned crashes suffered.
    pub crashes: u64,
    /// Planned restarts performed.
    pub rejuvenations: u64,
    /// Total downtime, seconds.
    pub downtime_secs: f64,
    /// Fraction of the horizon the service was up.
    pub availability: f64,
    /// Estimated requests lost during downtime (mean observed throughput ×
    /// downtime).
    pub lost_requests: f64,
}

/// Operates `scenario` repeatedly under `policy` until `config.horizon_secs`
/// of (simulated) wall-clock time passes; every epoch ends in a crash, a
/// planned restart, or the scenario running out.
///
/// The predictive policy requires `predictor`; other policies ignore it.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the predictive policy is
/// requested without a predictor or with degenerate parameters.
pub fn evaluate_policy(
    scenario: &Scenario,
    policy: RejuvenationPolicy,
    predictor: Option<&AgingPredictor>,
    config: &RejuvenationConfig,
    base_seed: u64,
) -> Result<RejuvenationReport, CoreError> {
    if let RejuvenationPolicy::Predictive { threshold_secs, consecutive } = policy {
        if predictor.is_none() {
            return Err(CoreError::InvalidParameter(
                "predictive policy needs a trained predictor".into(),
            ));
        }
        if threshold_secs <= 0.0 || consecutive == 0 {
            return Err(CoreError::InvalidParameter(
                "predictive policy needs positive threshold and consecutive count".into(),
            ));
        }
    }
    if let RejuvenationPolicy::TimeBased { interval_secs } = policy {
        if interval_secs <= 0.0 {
            return Err(CoreError::InvalidParameter("interval must be positive".into()));
        }
    }

    let mut elapsed = 0.0;
    let mut crashes = 0u64;
    let mut rejuvenations = 0u64;
    let mut downtime = 0.0;
    let mut throughput_sum = 0.0;
    let mut throughput_n = 0u64;
    let mut epoch = 0u64;

    while elapsed < config.horizon_secs {
        let mut sim = Simulator::new(scenario, base_seed.wrapping_add(epoch));
        let mut online = predictor.map(|p| p.online());
        let mut below = 0usize;
        let mut seen = 0usize;
        let epoch_end: EpochEnd;

        loop {
            match sim.step() {
                StepOutcome::Checkpoint(sample) => {
                    seen += 1;
                    throughput_sum += sample.throughput_rps;
                    throughput_n += 1;
                    let uptime = sample.time_secs;
                    if elapsed + uptime >= config.horizon_secs {
                        epoch_end = EpochEnd::HorizonReached(uptime);
                        break;
                    }
                    match policy {
                        RejuvenationPolicy::Reactive => {}
                        RejuvenationPolicy::TimeBased { interval_secs } => {
                            if uptime >= interval_secs {
                                epoch_end = EpochEnd::Rejuvenated(uptime);
                                break;
                            }
                        }
                        RejuvenationPolicy::Predictive { threshold_secs, consecutive } => {
                            let prediction =
                                online.as_mut().expect("validated above").observe(&sample);
                            if seen > config.warmup_checkpoints && prediction < threshold_secs {
                                below += 1;
                                if below >= consecutive {
                                    epoch_end = EpochEnd::Rejuvenated(uptime);
                                    break;
                                }
                            } else {
                                below = 0;
                            }
                        }
                    }
                }
                StepOutcome::Crashed(crash) => {
                    epoch_end = EpochEnd::Crashed(crash.time_secs);
                    break;
                }
                StepOutcome::Finished => {
                    epoch_end = EpochEnd::RanOut(sim.time_ms() as f64 / 1000.0);
                    break;
                }
            }
        }

        match epoch_end {
            EpochEnd::HorizonReached(uptime) => {
                elapsed += uptime;
                break;
            }
            EpochEnd::Crashed(uptime) => {
                crashes += 1;
                downtime += config.crash_downtime_secs;
                elapsed += uptime + config.crash_downtime_secs;
            }
            EpochEnd::Rejuvenated(uptime) => {
                rejuvenations += 1;
                downtime += config.rejuvenation_downtime_secs;
                elapsed += uptime + config.rejuvenation_downtime_secs;
            }
            EpochEnd::RanOut(uptime) => {
                // Scenario exhausted without crash: time passes, service up.
                elapsed += uptime.max(1.0);
            }
        }
        epoch += 1;
    }

    let horizon = elapsed.max(1.0);
    let mean_rps = if throughput_n > 0 { throughput_sum / throughput_n as f64 } else { 0.0 };
    Ok(RejuvenationReport {
        policy: policy.label(),
        horizon_secs: horizon,
        crashes,
        rejuvenations,
        downtime_secs: downtime,
        availability: ((horizon - downtime) / horizon).clamp(0.0, 1.0),
        lost_requests: mean_rps * downtime,
    })
}

enum EpochEnd {
    Crashed(f64),
    Rejuvenated(f64),
    RanOut(f64),
    HorizonReached(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_monitor::FeatureSet;
    use aging_testbed::MemLeakSpec;

    fn crashing_scenario() -> Scenario {
        Scenario::builder("leaky")
            .emulated_browsers(100)
            .memory_leak(MemLeakSpec::new(15))
            .run_to_crash()
            .build()
    }

    fn short_config() -> RejuvenationConfig {
        RejuvenationConfig { horizon_secs: 4.0 * 3600.0, ..Default::default() }
    }

    #[test]
    fn reactive_policy_suffers_crashes() {
        let report = evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::Reactive,
            None,
            &short_config(),
            1,
        )
        .unwrap();
        assert!(report.crashes >= 2, "a leaky server crashes repeatedly: {report:?}");
        assert_eq!(report.rejuvenations, 0);
        assert!(report.availability < 1.0);
    }

    #[test]
    fn frequent_time_based_avoids_crashes_but_restarts_a_lot() {
        let report = evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::TimeBased { interval_secs: 900.0 },
            None,
            &short_config(),
            2,
        )
        .unwrap();
        assert_eq!(report.crashes, 0, "15-minute restarts pre-empt a ~40-minute TTF");
        assert!(report.rejuvenations >= 10);
    }

    #[test]
    fn predictive_policy_beats_reactive_availability() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 77).unwrap();
        let cfg = short_config();
        let predictive = evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 },
            Some(&predictor),
            &cfg,
            3,
        )
        .unwrap();
        let reactive =
            evaluate_policy(&crashing_scenario(), RejuvenationPolicy::Reactive, None, &cfg, 3)
                .unwrap();
        assert!(
            predictive.crashes < reactive.crashes,
            "prediction must pre-empt crashes: {predictive:?} vs {reactive:?}"
        );
        assert!(
            predictive.availability > reactive.availability,
            "predictive {} vs reactive {}",
            predictive.availability,
            reactive.availability
        );
    }

    #[test]
    fn predictive_without_predictor_is_rejected() {
        let err = evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::Predictive { threshold_secs: 300.0, consecutive: 2 },
            None,
            &short_config(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter(_)));
    }

    #[test]
    fn degenerate_parameters_rejected() {
        let predictor =
            AgingPredictor::train(&[crashing_scenario()], FeatureSet::exp42(), 9).unwrap();
        assert!(evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::Predictive { threshold_secs: 0.0, consecutive: 2 },
            Some(&predictor),
            &short_config(),
            1,
        )
        .is_err());
        assert!(evaluate_policy(
            &crashing_scenario(),
            RejuvenationPolicy::TimeBased { interval_secs: -1.0 },
            None,
            &short_config(),
            1,
        )
        .is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(RejuvenationPolicy::Reactive.label(), "reactive");
        assert!(RejuvenationPolicy::TimeBased { interval_secs: 60.0 }.label().contains("60"));
        assert!(RejuvenationPolicy::Predictive { threshold_secs: 300.0, consecutive: 2 }
            .label()
            .contains("300"));
    }
}
