use std::fmt;

/// Error type for the prediction framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Training was requested with no scenarios or traces.
    NoTrainingRuns,
    /// The monitored executions produced no checkpoints to learn from.
    EmptyTrainingData,
    /// An underlying learner failed.
    Ml(aging_ml::MlError),
    /// A caller-supplied parameter was invalid.
    InvalidParameter(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoTrainingRuns => write!(f, "no training runs supplied"),
            CoreError::EmptyTrainingData => {
                write!(f, "training runs produced no monitoring checkpoints")
            }
            CoreError::Ml(e) => write!(f, "learner error: {e}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aging_ml::MlError> for CoreError {
    fn from(e: aging_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        assert!(CoreError::NoTrainingRuns.to_string().contains("no training"));
        assert!(CoreError::EmptyTrainingData.to_string().contains("checkpoints"));
        let wrapped = CoreError::from(aging_ml::MlError::EmptyTrainingSet);
        assert!(wrapped.source().is_some());
        assert!(CoreError::InvalidParameter("x".into()).to_string().contains('x'));
    }
}
