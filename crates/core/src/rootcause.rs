//! Root-cause hints from the learned model tree.
//!
//! Section 4.4 of the paper: "we observed the tree built by M5P, where the
//! root node contains the system memory attribute … the second variable
//! inspected is the number of threads … Only with the first two levels of
//! the tree we can observe how memory usage and the threads are important
//! variables, which gives administrators or developers a clue on the root
//! cause of the failure due to software aging."
//!
//! [`RootCauseReport`] ranks the attributes by how shallowly and how often
//! the tree tests them and buckets them into resource categories.

use aging_ml::m5p::{M5pModel, SplitUsage};
use serde::{Deserialize, Serialize};

/// Resource category an attribute points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ResourceCategory {
    /// Java heap internals (Young/Old zones).
    JavaHeap,
    /// Process/system memory.
    Memory,
    /// Thread population.
    Threads,
    /// Load/throughput/latency signals.
    Load,
    /// Anything else (disk, swap, processes, …).
    Other,
}

/// Classifies a Table-2 variable name into a resource category.
pub fn categorize(variable: &str) -> ResourceCategory {
    if variable.contains("young") || variable.contains("old") {
        ResourceCategory::JavaHeap
    } else if variable.contains("mem") || variable.contains("swap") {
        ResourceCategory::Memory
    } else if variable.contains("thread") {
        ResourceCategory::Threads
    } else if variable.contains("throughput")
        || variable.contains("response")
        || variable.contains("load")
        || variable.contains("workload")
        || variable.contains("connections")
    {
        ResourceCategory::Load
    } else {
        ResourceCategory::Other
    }
}

/// A ranked root-cause analysis extracted from an M5P tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootCauseReport {
    /// Split usage, ordered by shallowest depth (most suspicious first).
    pub ranked: Vec<SplitUsage>,
    /// Categories implicated within the first two tree levels, deduplicated
    /// in rank order — the paper's "first two levels" heuristic.
    pub suspected: Vec<ResourceCategory>,
}

impl RootCauseReport {
    /// Analyses a fitted model tree.
    pub fn from_model(model: &M5pModel) -> Self {
        let ranked = model.split_usage();
        let mut suspected = Vec::new();
        for usage in ranked.iter().filter(|u| u.min_depth <= 1) {
            let cat = categorize(&usage.attribute);
            if !suspected.contains(&cat) {
                suspected.push(cat);
            }
        }
        RootCauseReport { ranked, suspected }
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("Root-cause hints from the M5P tree:\n");
        if self.ranked.is_empty() {
            out.push_str("  (the tree has no splits: no aging signal was learned)\n");
            return out;
        }
        for u in self.ranked.iter().take(8) {
            out.push_str(&format!(
                "  depth {:>2}  used {:>3}x  {:<28} [{:?}]\n",
                u.min_depth,
                u.count,
                u.attribute,
                categorize(&u.attribute)
            ));
        }
        out.push_str(&format!("  suspected resources: {:?}\n", self.suspected));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_dataset::Dataset;
    use aging_ml::m5p::M5pLearner;
    use aging_ml::Learner;

    #[test]
    fn categories_cover_table2_names() {
        assert_eq!(categorize("young_used"), ResourceCategory::JavaHeap);
        assert_eq!(categorize("swa_var_old"), ResourceCategory::JavaHeap);
        assert_eq!(categorize("sys_mem_used"), ResourceCategory::Memory);
        assert_eq!(categorize("tomcat_mem_used"), ResourceCategory::Memory);
        assert_eq!(categorize("swap_free"), ResourceCategory::Memory);
        assert_eq!(categorize("num_threads"), ResourceCategory::Threads);
        assert_eq!(categorize("inv_swa_threads"), ResourceCategory::Threads);
        assert_eq!(categorize("throughput"), ResourceCategory::Load);
        assert_eq!(categorize("response_time"), ResourceCategory::Load);
        assert_eq!(categorize("http_connections"), ResourceCategory::Load);
        assert_eq!(categorize("disk_used"), ResourceCategory::Other);
        assert_eq!(categorize("num_processes"), ResourceCategory::Other);
    }

    #[test]
    fn report_identifies_the_driving_attribute() {
        // Target driven by a memory-ish attribute; noise elsewhere.
        let mut ds = Dataset::new(vec!["tomcat_mem_used".into(), "disk_used".into()], "ttf");
        for i in 0..400 {
            let mem = i as f64;
            let ttf = if mem < 200.0 { 8000.0 - 10.0 * mem } else { 12000.0 - 30.0 * mem };
            ds.push_row(vec![mem, 9500.0 + (i % 3) as f64], ttf).unwrap();
        }
        let model = M5pLearner::default().fit(&ds).unwrap();
        let report = RootCauseReport::from_model(&model);
        assert!(!report.ranked.is_empty());
        assert_eq!(report.ranked[0].attribute, "tomcat_mem_used");
        assert!(report.suspected.contains(&ResourceCategory::Memory));
        assert!(report.summary().contains("tomcat_mem_used"));
    }

    #[test]
    fn splitless_tree_reports_no_signal() {
        let mut ds = Dataset::new(vec!["x".into()], "ttf");
        for i in 0..50 {
            ds.push_row(vec![i as f64], 10_800.0).unwrap();
        }
        let model = M5pLearner::default().fit(&ds).unwrap();
        let report = RootCauseReport::from_model(&model);
        assert!(report.ranked.is_empty());
        assert!(report.suspected.is_empty());
        assert!(report.summary().contains("no aging signal"));
    }
}
