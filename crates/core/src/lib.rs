//! The paper's primary contribution: adaptive on-line software-aging
//! prediction.
//!
//! This crate ties the workspace together into the framework of
//! *"Adaptive on-line software aging prediction based on Machine Learning"*
//! (DSN 2010):
//!
//! - [`predictor`] — [`AgingPredictor`]: trains an M5P model tree on
//!   monitored run-to-crash executions and predicts time to failure for
//!   fresh executions, including the dynamic-scenario evaluation with
//!   frozen-rate ground truth;
//! - [`online`] — [`OnlineTtfPredictor`]: the streaming predictor that
//!   consumes one 15-second checkpoint at a time, exactly as the on-line
//!   deployment sketched in the paper (and its TR extension) would;
//! - [`rootcause`] — interpretation of the learned tree: "the model could
//!   give clues to determine the root cause of failure" (Section 4.4);
//! - [`rejuvenation`] — the proactive-rejuvenation layer from the paper's
//!   introduction and TR extension: time-based vs predictive policies with
//!   availability and lost-work accounting.
//!
//! # Example
//!
//! ```no_run
//! use aging_core::AgingPredictor;
//! use aging_monitor::FeatureSet;
//! use aging_testbed::{MemLeakSpec, Scenario};
//!
//! let train: Vec<Scenario> = [25, 50, 100, 200]
//!     .into_iter()
//!     .map(|ebs| {
//!         Scenario::builder(format!("train-{ebs}"))
//!             .emulated_browsers(ebs)
//!             .memory_leak(MemLeakSpec::new(30))
//!             .run_to_crash()
//!             .build()
//!     })
//!     .collect();
//! let predictor = AgingPredictor::train(&train, FeatureSet::exp41(), 42)?;
//! println!("{} leaves", predictor.model().n_leaves());
//! # Ok::<(), aging_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod online;
pub mod predictor;
pub mod rejuvenation;
pub mod rootcause;

pub use error::CoreError;
pub use online::{clamp_ttf, OnlineTtfPredictor};
pub use predictor::{AgingPredictor, EvalReport};
pub use rejuvenation::{RejuvenationConfig, RejuvenationPolicy, RejuvenationReport};
pub use rootcause::RootCauseReport;
