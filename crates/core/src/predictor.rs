//! Training and evaluating the aging predictor.
//!
//! [`AgingPredictor`] packages the paper's workflow: run (or accept)
//! several monitored run-to-crash executions, build the labelled dataset
//! with the experiment's feature set, train an M5P model tree, then
//! evaluate on fresh executions — either against the run's own crash time
//! (Experiment 4.1) or against the frozen-rate ground truth (Experiments
//! 4.2 and 4.4: "we fix the current injection rate and then simulate the
//! system until a crash occurs").

use crate::online::OnlineTtfPredictor;
use crate::CoreError;
use aging_ml::eval::{evaluate, EvalConfig, Evaluation};
use aging_ml::m5p::{M5pLearner, M5pModel};
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use aging_testbed::{RunTrace, Scenario, Simulator, StepOutcome};

/// The result of evaluating a predictor on one execution.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// The monitored execution.
    pub trace: RunTrace,
    /// Per-checkpoint TTF predictions, seconds.
    pub predictions: Vec<f64>,
    /// Per-checkpoint true TTFs, seconds.
    pub actuals: Vec<f64>,
    /// The paper's metric suite over the run.
    pub evaluation: Evaluation,
}

/// A trained software-aging predictor (M5P + feature pipeline).
#[derive(Debug, Clone)]
pub struct AgingPredictor {
    model: M5pModel,
    features: FeatureSet,
    n_training_instances: usize,
    training_runs: usize,
}

impl AgingPredictor {
    /// Runs every training scenario (scenario `i` uses seed
    /// `base_seed + i`), labels the traces and fits the paper-configured
    /// M5P (10 instances per leaf).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoTrainingRuns`] for an empty scenario list,
    /// [`CoreError::EmptyTrainingData`] when no checkpoints were produced,
    /// and learner errors otherwise.
    pub fn train(
        scenarios: &[Scenario],
        features: FeatureSet,
        base_seed: u64,
    ) -> Result<Self, CoreError> {
        Self::train_with(&M5pLearner::paper_default(), scenarios, features, base_seed)
    }

    /// Like [`AgingPredictor::train`] but with a custom M5P configuration
    /// (used by the ablation benches).
    ///
    /// # Errors
    ///
    /// See [`AgingPredictor::train`].
    pub fn train_with(
        learner: &M5pLearner,
        scenarios: &[Scenario],
        features: FeatureSet,
        base_seed: u64,
    ) -> Result<Self, CoreError> {
        if scenarios.is_empty() {
            return Err(CoreError::NoTrainingRuns);
        }
        let traces: Vec<RunTrace> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| s.run(base_seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&RunTrace> = traces.iter().collect();
        Self::train_on_traces(learner, &refs, features)
    }

    /// Trains from already-monitored executions.
    ///
    /// # Errors
    ///
    /// See [`AgingPredictor::train`].
    pub fn train_on_traces(
        learner: &M5pLearner,
        traces: &[&RunTrace],
        features: FeatureSet,
    ) -> Result<Self, CoreError> {
        if traces.is_empty() {
            return Err(CoreError::NoTrainingRuns);
        }
        let dataset = build_dataset(traces, &features, TTF_CAP_SECS);
        if dataset.is_empty() {
            return Err(CoreError::EmptyTrainingData);
        }
        let n = dataset.len();
        let model = learner.fit(&dataset)?;
        Ok(AgingPredictor { model, features, n_training_instances: n, training_runs: traces.len() })
    }

    /// The fitted model tree.
    pub fn model(&self) -> &M5pModel {
        &self.model
    }

    /// The feature set the model consumes.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// Number of training instances (the paper reports e.g. "2776
    /// instances" for Experiment 4.1).
    pub fn n_training_instances(&self) -> usize {
        self.n_training_instances
    }

    /// Number of training executions.
    pub fn training_runs(&self) -> usize {
        self.training_runs
    }

    /// A streaming predictor borrowing this model.
    pub fn online(&self) -> OnlineTtfPredictor<'_> {
        OnlineTtfPredictor::new(&self.model, self.features.clone())
    }

    /// Evaluates on a fresh execution of `scenario`, using the run's own
    /// crash time as ground truth (Experiment 4.1 style: the injection rate
    /// is constant, so the crash time *is* the truth).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingData`] when the run produced no
    /// checkpoints.
    pub fn evaluate_scenario(
        &self,
        scenario: &Scenario,
        seed: u64,
    ) -> Result<EvalReport, CoreError> {
        let trace = scenario.run(seed);
        self.evaluate_trace(trace)
    }

    /// Evaluates against an existing trace (crash-time ground truth).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingData`] when the trace has no
    /// checkpoints.
    pub fn evaluate_trace(&self, trace: RunTrace) -> Result<EvalReport, CoreError> {
        if trace.samples.is_empty() {
            return Err(CoreError::EmptyTrainingData);
        }
        let actuals = label_ttf(&trace, TTF_CAP_SECS);
        let mut online = self.online();
        let predictions: Vec<f64> = trace.samples.iter().map(|s| online.observe(s)).collect();
        let evaluation = evaluate(&predictions, &actuals, &EvalConfig::default());
        Ok(EvalReport { trace, predictions, actuals, evaluation })
    }

    /// Evaluates on a *dynamic* scenario with the paper's frozen-rate
    /// ground truth: at every checkpoint the simulator is forked, its
    /// current injection rates frozen, and run until crash; the fork's
    /// crash delay is the true TTF for that checkpoint.
    ///
    /// This is expensive (one fork per checkpoint) but exact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingData`] when the run produced no
    /// checkpoints.
    pub fn evaluate_scenario_frozen_truth(
        &self,
        scenario: &Scenario,
        seed: u64,
    ) -> Result<EvalReport, CoreError> {
        let mut sim = Simulator::new(scenario, seed);
        let mut online = self.online();
        let mut samples = Vec::new();
        let mut predictions = Vec::new();
        let mut actuals = Vec::new();
        while let StepOutcome::Checkpoint(sample) = sim.step() {
            predictions.push(online.observe(&sample));
            actuals.push(sim.frozen_time_to_crash(TTF_CAP_SECS));
            samples.push(sample);
        }
        if samples.is_empty() {
            return Err(CoreError::EmptyTrainingData);
        }
        let trace = RunTrace {
            scenario: scenario.name.clone(),
            seed,
            samples,
            crash: sim.crash(),
            duration_secs: sim.time_ms() as f64 / 1000.0,
        };
        let evaluation = evaluate(&predictions, &actuals, &EvalConfig::default());
        Ok(EvalReport { trace, predictions, actuals, evaluation })
    }
}

/// Evaluates an arbitrary fitted model (e.g. the linear-regression
/// baseline) on a trace, streaming the same feature pipeline.
///
/// # Panics
///
/// Panics if the trace has no checkpoints.
pub fn evaluate_regressor_on_trace(
    model: &dyn Regressor,
    features: &FeatureSet,
    trace: &RunTrace,
    actuals: &[f64],
) -> Evaluation {
    assert!(!trace.samples.is_empty(), "trace has no checkpoints");
    let mut online = OnlineTtfPredictor::new(model, features.clone());
    let predictions: Vec<f64> = trace.samples.iter().map(|s| online.observe(s)).collect();
    evaluate(&predictions, actuals, &EvalConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_testbed::MemLeakSpec;

    fn quick_scenario(name: &str, ebs: u64, n: u32) -> Scenario {
        Scenario::builder(name)
            .emulated_browsers(ebs)
            .memory_leak(MemLeakSpec::new(n))
            .run_to_crash()
            .build()
    }

    #[test]
    fn train_and_evaluate_deterministic_aging() {
        // Small-scale version of Experiment 4.1: train at three workloads,
        // test at an unseen one. The test workload (100) deliberately sits
        // strictly inside a training gap (90..150) rather than exactly on a
        // split midpoint: with training values {a, b} M5P thresholds land
        // at (a+b)/2, and a test workload exactly on the midpoint routes
        // into the wrong branch by tie-breaking, which is a knife-edge this
        // smoke test should not depend on.
        let train = vec![
            quick_scenario("a", 150, 15),
            quick_scenario("b", 90, 15),
            quick_scenario("c", 50, 15),
        ];
        let predictor = AgingPredictor::train(&train, FeatureSet::exp41(), 100).unwrap();
        assert!(predictor.n_training_instances() > 100);
        assert_eq!(predictor.training_runs(), 3);
        assert!(predictor.model().n_leaves() >= 1);

        let report = predictor.evaluate_scenario(&quick_scenario("test", 100, 15), 999).unwrap();
        assert_eq!(report.predictions.len(), report.actuals.len());
        // The prediction should be usable: well under half the mean TTF.
        let mean_ttf: f64 = report.actuals.iter().sum::<f64>() / report.actuals.len() as f64;
        assert!(
            report.evaluation.mae < mean_ttf * 0.5,
            "MAE {} vs mean TTF {mean_ttf}",
            report.evaluation.mae
        );
    }

    #[test]
    fn no_training_runs_is_an_error() {
        assert!(matches!(
            AgingPredictor::train(&[], FeatureSet::exp41(), 1),
            Err(CoreError::NoTrainingRuns)
        ));
    }

    #[test]
    fn online_predictor_counts() {
        let train = vec![quick_scenario("a", 100, 15)];
        let p = AgingPredictor::train(&train, FeatureSet::exp42(), 5).unwrap();
        let trace = quick_scenario("t", 100, 15).run(6);
        let mut online = p.online();
        for s in &trace.samples {
            let pred = online.observe(s);
            assert!(pred.is_finite());
        }
        assert_eq!(online.observed(), trace.samples.len());
    }

    #[test]
    fn empty_trace_is_rejected() {
        let train = vec![quick_scenario("a", 100, 15)];
        let p = AgingPredictor::train(&train, FeatureSet::exp42(), 7).unwrap();
        let empty = RunTrace {
            scenario: "empty".into(),
            seed: 0,
            samples: vec![],
            crash: None,
            duration_secs: 0.0,
        };
        assert!(matches!(p.evaluate_trace(empty), Err(CoreError::EmptyTrainingData)));
    }
}
