//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of `rand` it actually uses: the [`Rng`] / [`SeedableRng`]
//! traits, a deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64 — *not* the upstream ChaCha12, so streams differ from real
//! `rand`, but every consumer in this workspace only relies on determinism
//! given a seed and uniformity), uniform `gen_range` over integer and float
//! ranges, and [`seq::SliceRandom::shuffle`].

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding API (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts a random word to a `f64` uniform in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = widening_uniform(rng, span);
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (lo as i128 + rng.next_u64() as i128) as $ty;
                }
                let draw = widening_uniform(rng, span);
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}

uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via 128-bit widening multiply
/// (Lemire-style; the multiply maps a 64-bit word onto the span with
/// bias below 2^-64, irrelevant for simulation workloads).
fn widening_uniform<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128);
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! uniform_float_impl {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                lo + (hi - lo) * u
            }
        }
    )*};
}

uniform_float_impl!(f32, f64);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++,
    /// seeded through SplitMix64. Statistically strong and fast; streams
    /// differ from upstream `StdRng` (ChaCha12) by design.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding procedure.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::widening_uniform(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize =
            (0..100).filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000)).count();
        assert!(same < 10, "different seeds should diverge, {same} collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&n));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from uniform");
        }
        let mean: f64 = (0..100_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
