//! Minimal offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with `sample_size`, and `Bencher::{iter, iter_batched}` —
//! with real wall-clock measurement: per sample the routine runs in a timed
//! batch, and the mean/min/max per-iteration times are printed. No
//! statistics engine, no HTML reports.
//!
//! Like upstream criterion, when the binary is run without the `--bench`
//! argument (as `cargo test` does for `harness = false` bench targets)
//! every routine executes once as a smoke test instead of being measured.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; the stand-in treats every
/// variant the same (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test does not. Match
        // criterion's behaviour of smoke-testing under cargo test.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { sample_size: 30, measure }
    }
}

impl Criterion {
    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.measure, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, criterion: self }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the stand-in's budget is fixed per sample.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.criterion.measure, routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measure: bool,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per invocation; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.measure {
            black_box(routine(setup()));
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Runs one benchmark: calibrates an iteration count so a sample takes a
/// measurable slice of time, then times `sample_size` samples.
fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, measure: bool, mut routine: F) {
    if !measure {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO, measure: false };
        routine(&mut b);
        println!("{id}: smoke-tested (run with `cargo bench` to measure)");
        return;
    }

    // Calibration: find how many iterations fit in ~50 ms, starting from 1.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO, measure: true };
        routine(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= Duration::from_millis(50) || per_iter > 0.25 {
            break per_iter;
        }
        iters = iters.saturating_mul(2);
    };
    // Budget ~2 s of measurement across the samples, at least 1 iter each.
    let budget_per_sample = 2.0 / sample_size as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO, measure: true };
        routine(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let min = times[0];
    let median = times[times.len() / 2];
    let max = times[times.len() - 1];
    println!(
        "{id:<60} time: [{} {} {}] ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        sample_size,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let calls = Cell::new(0u32);
        let mut c = Criterion { sample_size: 10, measure: false };
        c.bench_function("counts", |b| b.iter(|| calls.set(calls.get() + 1)));
        assert_eq!(calls.get(), 1, "smoke mode must run the routine exactly once");
    }

    #[test]
    fn measure_mode_reports_sane_timing() {
        let mut c = Criterion { sample_size: 5, measure: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group
            .bench_function("spin", |b| b.iter(|| std::hint::black_box((0..1000u64).sum::<u64>())));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut produced = 0u32;
        let mut b = Bencher { iters: 4, elapsed: Duration::ZERO, measure: true };
        b.iter_batched(
            || {
                produced += 1;
                vec![produced]
            },
            |v| v.into_iter().sum::<u32>(),
            BatchSize::SmallInput,
        );
        assert_eq!(produced, 4, "one setup per measured iteration");
    }
}
