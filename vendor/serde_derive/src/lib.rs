//! Minimal offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Derives the vendored `serde` crate's value-tree `Serialize` /
//! `Deserialize` traits for plain (non-generic) structs and enums, with the
//! representation `serde_json` would use: structs as objects, newtype
//! structs as their inner value, tuple structs as arrays, unit enum
//! variants as strings and data-carrying variants as externally tagged
//! single-key objects.
//!
//! Implemented with nothing but `proc_macro` token iteration — no `syn` or
//! `quote` — because the build environment has no crates.io access. The
//! only serde attribute supported is field-level `#[serde(default)]` on
//! named fields (missing field → `Default::default()`); every other
//! `#[serde(...)]` form is a loud compile error, as is deriving for
//! generic types, rather than producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            return format!("::core::compile_error!({message:?});")
                .parse()
                .expect("compile_error snippet parses");
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| panic!("generated code failed to parse: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

/// One named field: its identifier and whether `#[serde(default)]` was
/// present (missing field deserializes to `Default::default()`).
struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Unit,
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err(format!("expected a name after `{keyword}`")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic types (deriving for `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_commas_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // `#`
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Arity of a tuple-struct / tuple-variant body: top-level commas + 1,
/// where "top level" ignores commas nested in `<...>` generic arguments
/// (commas inside parenthesized groups are invisible here anyway).
fn count_top_level_commas_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_any = false;
    for tt in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if !saw_any {
        return 0;
    }
    arity + 1
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = take_field_attrs(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Advances past field attributes and visibility like
/// [`skip_attrs_and_vis`], but inspects `#[serde(...)]` attributes on the
/// way: returns whether `#[serde(default)]` was present, erroring on any
/// other serde attribute so unsupported forms fail loudly instead of being
/// silently ignored.
fn take_field_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // `#`
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    default |= parse_serde_attr(g.stream())?;
                    *pos += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `(crate)` etc.
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Inspects one attribute body (the tokens inside `#[...]`): `true` for
/// exactly `serde(default)`, `false` for non-serde attributes, an error
/// for any other `serde(...)` form.
fn parse_serde_attr(stream: TokenStream) -> Result<bool, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(arg)] if arg.to_string() == "default" => Ok(true),
                _ => Err(format!(
                    "vendored serde_derive supports only `#[serde(default)]`, \
                     found `#[serde({})]`",
                    args.stream()
                )),
            }
        }
        [TokenTree::Ident(name), ..] if name.to_string() == "serde" => {
            Err("vendored serde_derive supports only `#[serde(default)]`".to_string())
        }
        _ => Ok(false),
    }
}

/// Advances past a type, stopping after the top-level `,` (or at end).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_top_level_commas_arity(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        while let Some(tt) = tokens.get(pos) {
            pos += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec::Vec::from([{}]))", items.join(", "))
                }
                Fields::Named(names) => obj_expr(names, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tag = format!("::std::string::String::from(\"{vname}\")");
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vname} => ::serde::Value::Str({tag}),")
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Arr(::std::vec::Vec::from([{}]))",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Obj(\
                                 ::std::vec::Vec::from([({tag}, {payload})])),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let payload = obj_expr(fields, |f| f.to_string());
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Obj(\
                                 ::std::vec::Vec::from([({tag}, {payload})])),",
                                fields = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

/// `Value::Obj(Vec::from([("f", to_value(<expr>)), ...]))`.
fn obj_expr(fields: &[Field], expr: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = f.name.as_str();
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}))",
                expr(f)
            )
        })
        .collect();
    format!(
        "::serde::Value::Obj(::std::vec::Vec::<(::std::string::String, ::serde::Value)>::from([{}]))",
        entries.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::mismatch(\"null for unit struct {name}\", other)),\n\
                     }}"
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => tuple_payload_de(name, *n, "v", name),
                Fields::Named(names) => named_payload_de(name, names, "v", name),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let ctor = format!("{name}::{vname}");
                    let body = match &v.fields {
                        Fields::Unit => unreachable!("filtered out above"),
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({ctor}(\
                             ::serde::Deserialize::from_value(payload)?))"
                        ),
                        Fields::Tuple(n) => tuple_payload_de(&ctor, *n, "payload", name),
                        Fields::Named(fields) => named_payload_de(&ctor, fields, "payload", name),
                    };
                    format!("\"{vname}\" => {{ {body} }}")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::mismatch(\"{name} variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    }
}

/// Deserializes `ctor(f0, .., fN)` from an N-element array in `src`.
fn tuple_payload_de(ctor: &str, arity: usize, src: &str, type_name: &str) -> String {
    let items: Vec<String> =
        (0..arity).map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?")).collect();
    format!(
        "match {src} {{\n\
             ::serde::Value::Arr(items) if items.len() == {arity} => \
                 ::std::result::Result::Ok({ctor}({items})),\n\
             other => ::std::result::Result::Err(\
                 ::serde::DeError::mismatch(\"{arity}-element array for {type_name}\", other)),\n\
         }}",
        items = items.join(", ")
    )
}

/// Deserializes `ctor { f: .. }` from an object in `src`; fields marked
/// `#[serde(default)]` fall back to `Default::default()` when missing.
fn named_payload_de(ctor: &str, fields: &[Field], src: &str, type_name: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let helper = if f.default { "field_or_default" } else { "field" };
            let f = f.name.as_str();
            format!("{f}: ::serde::{helper}(obj, \"{f}\")?,")
        })
        .collect();
    format!(
        "{{\n\
             let obj = {src}.as_obj().ok_or_else(|| \
                 ::serde::DeError::mismatch(\"object for {type_name}\", {src}))?;\n\
             ::std::result::Result::Ok({ctor} {{ {inits} }})\n\
         }}",
        inits = inits.join(" ")
    )
}
