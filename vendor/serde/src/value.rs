//! The JSON value tree, its parser and its writer.
//!
//! Numbers keep their lexical class — unsigned, signed or float — so
//! `u64` seeds round-trip exactly instead of being squeezed through `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without decimal point or exponent.
    U64(u64),
    /// A negative integer without decimal point or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved so output is stable.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error produced by deserialization or JSON parsing.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// A "expected X, found Y" shape mismatch.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError::new(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Renders `value` as JSON. `indent = None` is compact; `Some(n)` pretty-
/// prints with `n`-space indentation per level.
pub fn format_value(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(value, indent, 0, &mut out);
    out
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |v, d, o| {
            write_value(v, indent, d, o);
        }),
        Value::Obj(entries) => {
            write_seq(entries.iter(), indent, depth, out, '{', '}', |(k, v), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            });
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(T, usize, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
        out.push_str("null");
        return;
    }
    // Rust's float Display is shortest-round-trip; force a decimal point so
    // the value re-parses into the float lexical class.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`DeError`] with a byte offset on malformed input.
pub fn parse_value(text: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> DeError {
        DeError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(n) {
                        return Ok(Value::I64(-signed));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("leak \"a\"\n".into())),
            ("seed".into(), Value::U64(u64::MAX)),
            ("delta".into(), Value::I64(-42)),
            ("rate".into(), Value::F64(0.1)),
            ("flags".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        for indent in [None, Some(2)] {
            let text = format_value(&v, indent);
            assert_eq!(parse_value(&text).unwrap(), v, "mode {indent:?}: {text}");
        }
    }

    #[test]
    fn float_class_survives_round_trip() {
        let text = format_value(&Value::F64(5.0), None);
        assert_eq!(text, "5.0", "whole floats keep a decimal point");
        assert_eq!(parse_value(&text).unwrap(), Value::F64(5.0));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(parse_value(r#""aé\tA😀""#).unwrap(), Value::Str("aé\tA😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"open", "{\"a\" 1}", "1 2", ""] {
            assert!(parse_value(bad).is_err(), "should reject {bad:?}");
        }
    }
}
