//! Minimal offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde this workspace exercises: `#[derive(Serialize,
//! Deserialize)]` plus JSON round-tripping through `serde_json::{to_string,
//! to_string_pretty, from_str}`. Instead of upstream serde's
//! serializer/deserializer abstraction, everything funnels through a single
//! JSON [`Value`] tree — drastically simpler, and sufficient because the
//! only data format in the workspace is JSON.
//!
//! Representation choices mirror `serde_json` defaults so documented
//! expectations carry over: struct → object, newtype struct → inner value,
//! unit enum variant → string, data-carrying variant → externally tagged
//! single-key object, `Option` → `null` / inner, missing `Option` field →
//! `None`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{format_value, parse_value, DeError, Value};

/// Serialization into the JSON [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::mismatch(stringify!($ty), v)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| DeError::mismatch(stringify!($ty), v))?
                    }
                    _ => return Err(DeError::mismatch(stringify!($ty), v)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $ty),
                    Value::U64(n) => Ok(n as $ty),
                    Value::I64(n) => Ok(n as $ty),
                    _ => Err(DeError::mismatch(stringify!($ty), v)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::mismatch("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::mismatch("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            _ => Err(DeError::mismatch("single-char string", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Arr(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::mismatch("tuple array", v)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Support for derived code
// ---------------------------------------------------------------------------

/// Looks up `name` in a struct object; absent fields deserialize from
/// `null`, which succeeds exactly for `Option` fields (mirroring serde's
/// missing-field behaviour).
///
/// # Errors
///
/// Propagates the field's own [`DeError`].
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}

/// Like [`field`], but for `#[serde(default)]` fields: a missing field
/// yields `T::default()` instead of attempting to deserialize `null`.
/// Present fields still deserialize strictly.
///
/// # Errors
///
/// Propagates the field's own [`DeError`] when the field is present but
/// malformed.
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn numeric_coercions() {
        // Integers may deserialize into floats (JSON "5" → 5.0).
        assert_eq!(f64::from_value(&Value::U64(5)).unwrap(), 5.0);
        assert_eq!(f64::from_value(&Value::I64(-5)).unwrap(), -5.0);
        // But floats never silently truncate into integers.
        assert!(u64::from_value(&Value::F64(5.5)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err(), "range checked");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let s: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&s.to_value()).unwrap(), Some(2.5));
        let t = (3usize, -1.25f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
        let b = Box::new(9u64);
        assert_eq!(Box::<u64>::from_value(&b.to_value()).unwrap(), b);
    }

    #[test]
    fn missing_option_field_is_none() {
        let obj = vec![("present".to_string(), Value::U64(1))];
        let missing: Option<u64> = field(&obj, "absent").unwrap();
        assert_eq!(missing, None);
        let err = field::<u64>(&obj, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn field_or_default_fills_missing_fields() {
        let obj = vec![("present".to_string(), Value::U64(1))];
        assert_eq!(field_or_default::<u64>(&obj, "present").unwrap(), 1);
        assert_eq!(field_or_default::<u64>(&obj, "absent").unwrap(), 0);
        assert_eq!(field_or_default::<Vec<u64>>(&obj, "absent").unwrap(), Vec::<u64>::new());
        // Present-but-malformed still errors.
        assert!(field_or_default::<bool>(&obj, "present").is_err());
    }
}
