//! Minimal offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! A thin text layer over the vendored `serde` crate's JSON value tree:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] with an [`Error`]
//! type that satisfies `Box<dyn std::error::Error>` call sites.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Error returned by JSON serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    inner: serde::DeError,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.inner)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(inner: serde::DeError) -> Self {
        Error { inner }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::format_value(&value.to_value(), None))
}

/// Serializes `value` as pretty-printed JSON (2-space indent, like
/// upstream's default).
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::format_value(&value.to_value(), Some(2)))
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::parse_value(text)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weight: Option<f64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted(f64),
        Pair(u32, u32),
        Configured { retries: u8, verbose: bool },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        name: String,
        seed: u64,
        offset: i64,
        ratio: f64,
        kinds: Vec<Kind>,
        inner: Inner,
        boxed: Box<Inner>,
        pairs: Vec<(usize, f64)>,
        missing: Option<u32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(f64);

    fn sample() -> Outer {
        Outer {
            name: "fleet \"α\"\n".to_string(),
            seed: u64::MAX,
            offset: -123,
            ratio: 0.1 + 0.2,
            kinds: vec![
                Kind::Plain,
                Kind::Weighted(2.5),
                Kind::Pair(3, 4),
                Kind::Configured { retries: 3, verbose: true },
            ],
            inner: Inner { label: "x".into(), weight: Some(1.25) },
            boxed: Box::new(Inner { label: "y".into(), weight: None }),
            pairs: vec![(0, 1.5), (7, -2.0)],
            missing: None,
        }
    }

    #[test]
    fn derived_types_round_trip_compact_and_pretty() {
        let value = sample();
        let compact = super::to_string(&value).unwrap();
        assert_eq!(super::from_str::<Outer>(&compact).unwrap(), value);
        let pretty = super::to_string_pretty(&value).unwrap();
        assert_eq!(super::from_str::<Outer>(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'), "pretty output is indented");
    }

    #[test]
    fn representation_matches_serde_json_conventions() {
        let compact = super::to_string(&sample()).unwrap();
        assert!(compact.contains("\"Plain\""), "unit variant as string: {compact}");
        assert!(compact.contains("{\"Weighted\":2.5}"), "newtype variant tagged: {compact}");
        assert!(compact.contains("{\"Pair\":[3,4]}"), "tuple variant as array: {compact}");
        assert!(compact.contains("\"missing\":null"), "None as null: {compact}");
        assert_eq!(super::to_string(&Wrapper(4.5)).unwrap(), "4.5", "newtype struct unwraps");
        assert_eq!(super::from_str::<Wrapper>("4.5").unwrap(), Wrapper(4.5));
    }

    #[test]
    fn errors_are_reported() {
        assert!(super::from_str::<Outer>("{\"name\":3}").is_err());
        assert!(super::from_str::<Outer>("not json").is_err());
        let err = super::from_str::<Kind>("\"Nope\"").unwrap_err();
        assert!(err.to_string().contains("unknown Kind variant"), "{err}");
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let text = super::to_string(&u64::MAX).unwrap();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(super::from_str::<u64>(&text).unwrap(), u64::MAX);
    }
}
