//! Minimal offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range / tuple / [`Just`] / mapped / [`prop_oneof!`] /
//! `prop::collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Test cases are generated from a deterministic per-test RNG (seeded from
//! the test function's name), so failures reproduce across runs. There is
//! **no shrinking**: a failing case reports its index and the assertion
//! message instead of a minimised input.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error raised by a failed `prop_assert!` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Run configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Creates the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between strategies (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Re-exports referenced as `prop::...` by convention.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Sizes accepted by [`vec()`]: an exact count or a range.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        /// Vectors of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// The result of [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts inside a proptest case, failing the case (not panicking) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Uniform choice among the listed strategies (all must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each argument is sampled from its strategy for
/// every generated case; `prop_assert*` failures report the case index.
///
/// Attributes on the test functions — including `///` doc comments, which
/// the compiler rewrites into `#[doc = "…"]` — are passed through to the
/// generated function, so `#[test]` must still be written (as with the
/// real proptest) and documentation is allowed above it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            e.message()
                        );
                    }
                }
            }
        )*
    };
    // Any `@with_config` invocation the arm above could not parse lands
    // here and stops with a real error. Without this arm the malformed
    // input would fall through to the catch-all below, which wraps it in
    // *another* `@with_config (…)` prefix and recurses forever — the
    // historical footgun where a stray token before `#[test]` hung the
    // compiler instead of reporting anything.
    (@with_config $($rest:tt)*) => {
        ::std::compile_error!(
            "proptest! could not parse its test functions; expected \
             `$(#[attr])* fn name(arg in strategy, …) { … }` items \
             (attributes and /// doc comments are allowed, `#[test]` is \
             still required for the function to run as a test)"
        );
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_rng() {
        use crate::Strategy;
        let s = 0u64..1000;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let va: Vec<u64> = (0..10).map(|_| s.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..10).map(|_| s.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 5u32..10,
            v in prop::collection::vec(0.0f64..1.0, 1..8),
            exact in prop::collection::vec(1usize..4, 3),
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(exact.len(), 3);
            for f in &v {
                prop_assert!((0.0..1.0).contains(f), "out of range: {f}");
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0.0f64..1.0).prop_map(|f| f as i64 - 10),
                Just(42i64),
                5i64..7,
            ],
        ) {
            prop_assert!(v == -10 || v == 42 || (5..7).contains(&v), "unexpected {v}");
        }

        /// Regression test for the doc-comment footgun: this `///` comment
        /// expands to `#[doc = "…"]` in front of `#[test]`, which the old
        /// macro could not match — the catch-all arm then re-wrapped the
        /// input in `@with_config` prefixes forever and the compiler hung.
        /// Compiling (and running) this test is the fix's proof.
        #[test]
        fn doc_comments_before_test_are_accepted(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    // The pass-through also keeps non-doc attributes working.
    proptest! {
        #[test]
        #[allow(clippy::eq_op)]
        fn non_doc_attributes_pass_through(x in 0i64..10) {
            prop_assert_eq!(x, x);
        }
    }
}
