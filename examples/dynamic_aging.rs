//! Dynamic software aging (the paper's Experiment 4.2 in miniature):
//! the injection rate changes every 20 minutes and the predictor must
//! adapt — including recognising the injection-free first phase as
//! "infinite" time to failure.
//!
//! ```text
//! cargo run --release --example dynamic_aging
//! ```

use software_aging::core::AgingPredictor;
use software_aging::ml::eval::format_duration;
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Training: one idle hour (labelled with the 3-hour "infinite" cap)
    // plus three constant-rate run-to-crash executions.
    let mut training =
        vec![Scenario::builder("train-idle").emulated_browsers(100).duration_minutes(60).build()];
    for n in [15u32, 30, 75] {
        training.push(
            Scenario::builder(format!("train-N{n}"))
                .emulated_browsers(100)
                .memory_leak(MemLeakSpec::new(n))
                .run_to_crash()
                .build(),
        );
    }
    let predictor = AgingPredictor::train(&training, FeatureSet::exp42(), 7)?;
    println!(
        "trained on {} runs, {} checkpoints",
        predictor.training_runs(),
        predictor.n_training_instances()
    );

    // Test: rates change every 20 minutes — none -> N=30 -> N=15 -> N=75.
    let test = Scenario::builder("dynamic")
        .emulated_browsers(100)
        .idle_phase_minutes(20)
        .leak_phase_minutes(20, MemLeakSpec::new(30), None)
        .leak_phase_minutes(20, MemLeakSpec::new(15), None)
        .final_leak_phase(MemLeakSpec::new(75), None)
        .build();

    // The ground truth for a changing rate is the frozen-rate fork: "we fix
    // the current injection rate and then simulate the system until a crash
    // occurs" (Section 4.2). This is exact because the simulator is
    // deterministic and cloneable.
    let report = predictor.evaluate_scenario_frozen_truth(&test, 99)?;
    println!("accuracy under changing rates: {}", report.evaluation.summary());

    println!("\n   time    predicted TTF       true TTF   (phase boundaries at 20/40/60 min)");
    for i in (0..report.predictions.len()).step_by(16) {
        println!(
            "{:>7.0}s  {:>14}  {:>13}",
            report.trace.samples[i].time_secs,
            format_duration(report.predictions[i]),
            format_duration(report.actuals[i]),
        );
    }
    Ok(())
}
