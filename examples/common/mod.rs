//! Shared plumbing for the fleet examples: the leaky-scenario helper and
//! the `--instances/--shards/--hours/--json/--metrics/--trace/--journal/
//! --replay` CLI parser.
//!
//! Lives in a subdirectory so cargo does not treat it as an example
//! target; each example pulls it in with `mod common;`.

use software_aging::obs::{FlightRecorder, TelemetrySnapshot};
use software_aging::testbed::{MemLeakSpec, Scenario};

/// A run-to-crash TPC-W scenario leaking through the search servlet.
pub fn leaky(name: impl Into<String>, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

/// Common fleet-example parameters.
pub struct FleetArgs {
    /// Deployments to operate.
    pub instances: usize,
    /// Worker threads.
    pub shards: usize,
    /// Operating horizon in simulated hours.
    pub hours: f64,
    /// Write the machine-readable report here when set.
    pub json: Option<String>,
    /// Attach a telemetry registry and write its JSON snapshot here.
    pub metrics: Option<String>,
    /// Attach a flight recorder and write its Chrome trace-event JSON
    /// (Perfetto-loadable) here.
    pub trace: Option<String>,
    /// Attach a durable checkpoint journal writing to this directory.
    pub journal: Option<String>,
    /// Replay the journal into the adaptation side before ingesting
    /// anything live — crash recovery from a previous `--journal` run.
    pub replay: bool,
}

/// Parses `--instances N --shards N --hours H [--json [PATH]]
/// [--metrics [PATH]] [--trace [PATH]] [--journal [DIR]] [--replay]` on
/// top of per-example defaults; a bare `--json` uses `json_default`, a
/// bare `--metrics` uses `metrics_default`, a bare `--trace` uses
/// `trace_default`, a bare `--journal` uses `journal_default`.
pub fn parse_args(
    defaults: FleetArgs,
    json_default: &str,
    metrics_default: &str,
    trace_default: &str,
    journal_default: &str,
) -> Result<FleetArgs, String> {
    let mut args = defaults;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--instances" => {
                args.instances = value(i)?.parse().map_err(|e| format!("--instances: {e}"))?;
                i += 2;
            }
            "--shards" => {
                args.shards = value(i)?.parse().map_err(|e| format!("--shards: {e}"))?;
                i += 2;
            }
            "--hours" => {
                args.hours = value(i)?.parse().map_err(|e| format!("--hours: {e}"))?;
                i += 2;
            }
            "--json" => match argv.get(i + 1) {
                // Optional value: a bare `--json` uses the default path.
                Some(path) if !path.starts_with("--") => {
                    args.json = Some(path.clone());
                    i += 2;
                }
                _ => {
                    args.json = Some(json_default.to_string());
                    i += 1;
                }
            },
            "--metrics" => match argv.get(i + 1) {
                Some(path) if !path.starts_with("--") => {
                    args.metrics = Some(path.clone());
                    i += 2;
                }
                _ => {
                    args.metrics = Some(metrics_default.to_string());
                    i += 1;
                }
            },
            "--trace" => match argv.get(i + 1) {
                Some(path) if !path.starts_with("--") => {
                    args.trace = Some(path.clone());
                    i += 2;
                }
                _ => {
                    args.trace = Some(trace_default.to_string());
                    i += 1;
                }
            },
            "--journal" => match argv.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => {
                    args.journal = Some(dir.clone());
                    i += 2;
                }
                _ => {
                    args.journal = Some(journal_default.to_string());
                    i += 1;
                }
            },
            "--replay" => {
                args.replay = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.instances == 0 || args.shards == 0 || args.hours <= 0.0 {
        return Err("instances, shards and hours must be positive".into());
    }
    if args.replay && args.journal.is_none() {
        return Err("--replay needs --journal (there is nothing to replay from)".into());
    }
    Ok(args)
}

/// Writes a telemetry snapshot as pretty JSON (the `METRICS_*.json`
/// artifact riding next to the `BENCH_*.json` report).
pub fn write_metrics(
    path: &str,
    snapshot: &TelemetrySnapshot,
) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, serde_json::to_string_pretty(snapshot)?)?;
    println!("wrote {path}");
    Ok(())
}

/// Writes a flight recorder's ring as Chrome trace-event JSON (the
/// `TRACE_*.json` artifact — open in Perfetto / `chrome://tracing`).
pub fn write_trace(
    path: &str,
    recorder: &FlightRecorder,
) -> Result<(), Box<dyn std::error::Error>> {
    let trace = recorder.trace();
    std::fs::write(path, trace.to_chrome_json())?;
    println!("wrote {path} ({} events, {} dropped by the ring)", trace.len(), recorder.dropped());
    Ok(())
}
