//! Automatic class discovery: a fleet with **zero operator-assigned
//! classes** recovers the partition a human would have labelled — and
//! matches the hand-labelled run's per-class accuracy.
//!
//! Two regimes share one fleet: `shift-*` deployments move to an
//! aggressive leak a quarter into the horizon, `steady-*` deployments
//! never change. The baseline run is the `hetero_fleet` configuration —
//! an operator assigned every instance to `leak` or `steady`, trained a
//! model per class and hand-picked per-class drift thresholds. The
//! discovered run gets none of that: one seed class, one blended model,
//! one shared template config. [`Fleet::run_discovered`] summarises every
//! instance's labelled-checkpoint stream into an aging signature, splits
//! the fleet when the silhouette and separation gates clear, spawns a
//! fresh adaptation pipeline for the new class, and re-routes instances
//! at epoch boundaries.
//!
//! ```text
//! cargo run --release --example discovered_fleet [-- --instances 15 \
//!     --shards 4 --hours 6 --json [PATH] --metrics [PATH] --trace [PATH]]
//! ```
//!
//! Two thirds of `--instances` form the shifting group, one third the
//! steady group. `--json` writes both reports (default path
//! `BENCH_discovered.json`); `--metrics` attaches a telemetry registry to
//! the discovered run — [`Fleet::run_discovered`] wires its internal
//! router and discovery engine automatically — and writes its snapshot
//! (default path `METRICS_discovered.json`); `--trace` attaches a flight
//! recorder the same way and writes its Chrome trace-event JSON (default
//! path `TRACE_discovered.json`) — discovery evaluations, class splits and
//! instance reassignments appear as causally linked instants.
//!
//! The run **asserts** the ISSUE 5 acceptance criteria: the discovered
//! partition is pure, its per-class mean TTF error is within 1.25× the
//! hand-labelled baseline, and the steady class's adaptation is never
//! retriggered once discovery has separated it from the shifted class.

use serde::Serialize;
use software_aging::adapt::discovery::{DiscoveryConfig, SignatureConfig};
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{
    DiscoverySetup, Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift,
};
use software_aging::journal::Journal;
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{FlightRecorder, Registry};
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct DiscoveredBench {
    hand_labelled: FleetReport,
    discovered: FleetReport,
}

const POLICY: RejuvenationPolicy =
    RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };

/// The fleet, optionally hand-labelled: both runs operate byte-identical
/// specs except for the `class` field — the discovered run must earn the
/// partition the operator writes down for free.
fn specs(n_shift: usize, n_steady: usize, horizon_secs: f64, labelled: bool) -> Vec<InstanceSpec> {
    let before = leaky("steady-leak", 100, 30);
    let after = leaky("fast-leak", 300, 5);
    let steady = leaky("steady-leak", 100, 30);
    let class = |name: &str| {
        if labelled {
            ServiceClass::new(name)
        } else {
            ServiceClass::default()
        }
    };
    let shifting = (0..n_shift).map({
        let class = class("leak");
        move |i| InstanceSpec {
            name: format!("shift-{i:03}"),
            scenario: before.clone(),
            policy: POLICY,
            seed: 5_000 + i as u64,
            shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
            class: class.clone(),
        }
    });
    let steady_class = class("steady");
    let steady = (0..n_steady).map(move |i| {
        let mut spec =
            InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), POLICY, 9_000 + i as u64);
        spec.class = steady_class.clone();
        spec
    });
    shifting.chain(steady).collect()
}

fn train(
    features: &FeatureSet,
    scenarios: &[software_aging::testbed::Scenario],
) -> Arc<dyn Regressor> {
    Arc::new(
        AgingPredictor::train(scenarios, features.clone(), 42)
            .expect("training scenarios crash")
            .model()
            .clone(),
    )
}

/// Mean TTF error over the instances of one *true* regime (by name
/// prefix) — the comparison axis that exists in both runs regardless of
/// how classes were assigned.
fn regime_error(report: &FleetReport, prefix: &str) -> f64 {
    let (sum, count) = report
        .instances
        .iter()
        .filter(|i| i.name.starts_with(prefix))
        .fold((0.0, 0u64), |(s, c), i| (s + i.ttf_error_sum_secs, c + i.ttf_error_count));
    if count > 0 {
        sum / count as f64
    } else {
        0.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 15,
        shards: 4,
        hours: 6.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_discovered.json",
        "METRICS_discovered.json",
        "TRACE_discovered.json",
        "JOURNAL_discovered",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: discovered_fleet [--instances N] [--shards N] [--hours H] \
                 [--json [PATH]] [--metrics [PATH]] [--trace [PATH]] [--journal [DIR]]"
        );
    })?;
    if args.replay {
        return Err("--replay: a discovered run registers its classes dynamically; \
             replay its journal offline with `aging_adapt::replay` instead"
            .into());
    }
    let n_shift = (args.instances * 2 / 3).max(1);
    let n_steady = (args.instances - n_shift).max(1);
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    println!(
        "training models … ({n_shift} shifting + {n_steady} steady deployments, \
         {:.0} h horizon)\n",
        args.hours
    );

    // ── Run 1: the hand-labelled baseline — operator classes, per-class
    // models, per-class hand-picked thresholds (the hetero_fleet recipe).
    // Both classes pre-shift run the same N = 30 regime, so the operator
    // trains both class models on that regime's history; the leak class's
    // post-shift recovery comes from its adaptation pipeline, not a
    // prescient training set.
    let leak_model = train(&features, &[leaky("train-30", 100, 30), leaky("train-125", 125, 30)]);
    let steady_model = train(&features, &[leaky("train-30", 100, 30), leaky("train-125", 125, 30)]);
    let hand_adapt = |threshold: f64| {
        AdaptConfig::builder()
            .drift(DriftConfig {
                error_threshold_secs: threshold,
                min_observations: 40,
                cooldown_observations: 120,
                ..Default::default()
            })
            .buffer_capacity(2048)
            .min_buffer_to_retrain(120)
            .build()
    };
    println!("── hand-labelled classes, per-class adaptation ──");
    let router = AdaptiveRouter::builder(features.variables().to_vec())
        .class(
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), leak_model)
                .config(hand_adapt(600.0))
                .build(),
        )
        .class(
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), steady_model)
                .config(hand_adapt(3600.0))
                .build(),
        )
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let mut hand_labelled = Fleet::new(specs(n_shift, n_steady, horizon, true), config)?
        .run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    hand_labelled.routing = Some(router.shutdown());
    println!("{hand_labelled}\n");

    // ── Run 2: zero operator classes — one blended model, one shared
    // template, the partition discovered from the aging signatures.
    println!("── automatic class discovery (no operator classes) ──");
    let blended_model =
        train(&features, &[leaky("train-30", 100, 30), leaky("train-125", 125, 30)]);
    let template = ClassSpec::builder(LearnerKind::M5p.learner(), blended_model)
        .config(hand_adapt(900.0)) // the shared default — not tuned per class
        .build();
    let setup = DiscoverySetup {
        router: RouterConfig::builder().retrainer_threads(2).build(),
        discovery: DiscoveryConfig { seed: 7, ..Default::default() },
        signature: SignatureConfig::default(),
        reassess_every_epochs: 60,
        ..DiscoverySetup::new(template)
    };
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let journal = match &args.journal {
        Some(dir) => Some(Arc::new(Journal::open(dir)?)),
        None => None,
    };
    let mut discovered_fleet = Fleet::new(specs(n_shift, n_steady, horizon, false), config)?;
    if let Some(registry) = &registry {
        discovered_fleet = discovered_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        discovered_fleet = discovered_fleet.with_trace(Arc::clone(recorder));
    }
    if let Some(journal) = &journal {
        discovered_fleet = discovered_fleet.with_journal(Arc::clone(journal));
    }
    let discovered = discovered_fleet.run_discovered(&setup, &features)?;
    println!("{discovered}\n");
    if let (Some(dir), Some(journal)) = (&args.journal, &journal) {
        journal.sync()?;
        let stats = discovered.journal.as_ref().expect("journal attached");
        println!(
            "journal: {} records ({} fsyncs, {} rotations) in {dir}\n",
            stats.appended_records, stats.fsyncs, stats.segment_rotations
        );
    }

    // ── Comparison + ISSUE 5 acceptance ──
    println!("── hand-labelled vs discovered, per regime ──");
    let mut worst_ratio: f64 = 0.0;
    for (regime, prefix) in [("shifting", "shift-"), ("steady", "steady-")] {
        let hand = regime_error(&hand_labelled, prefix);
        let disc = regime_error(&discovered, prefix);
        let ratio = disc / hand.max(1.0);
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "  {regime:<9} TTF error {hand:>7.0} s (hand-labelled) vs {disc:>7.0} s \
             (discovered)  = {ratio:.2}×"
        );
    }
    let discovery = discovered.discovery.as_ref().expect("discovered runs carry a partition");
    println!(
        "  partition: {} evaluations, {} splits, {} merges, {} reassignments",
        discovery.evaluations, discovery.splits, discovery.merges, discovery.reassignments
    );
    println!("── discovery timeline ──");
    for e in &discovery.evaluations_log {
        println!(
            "  epoch {:>5}  ready {:>3}  classes {}  silhouette {:>5.2}  reassigned {:>3}{}{}",
            e.epoch,
            e.ready_instances,
            e.active_classes,
            e.silhouette,
            e.reassignments,
            if e.new_classes.is_empty() {
                String::new()
            } else {
                format!("  +{:?}", e.new_classes)
            },
            if e.retired_classes.is_empty() {
                String::new()
            } else {
                format!("  -{:?}", e.retired_classes)
            },
        );
    }

    // 1. The partition is pure: no discovered class mixes the regimes.
    let steady_class = discovered
        .instances
        .iter()
        .find(|i| i.name.starts_with("steady-"))
        .map(|i| i.class.clone())
        .expect("steady instances exist");
    for instance in &discovered.instances {
        let expected_steady = instance.name.starts_with("steady-");
        let in_steady_class = instance.class == steady_class;
        assert_eq!(
            expected_steady, in_steady_class,
            "impure partition: {} landed in {}",
            instance.name, instance.class
        );
    }
    println!("  partition is pure: steady class = {steady_class}");

    // 2. Accuracy within 1.25× of the hand-labelled baseline, per class.
    assert!(
        worst_ratio <= 1.25,
        "discovered per-class error must stay within 1.25× of the hand-labelled \
         baseline, worst ratio {worst_ratio:.2}×"
    );

    // 3. Once discovery separated the classes, the shifted class's
    // continued drifting never retriggers the steady class: its drift
    // count is flat from the first post-split evaluation to the end of
    // the run. (The first post-split entry is the anchor — the split
    // evaluation itself can still race bus stragglers published before
    // the re-routing.)
    let split_idx = discovery
        .evaluations_log
        .iter()
        .position(|e| !e.new_classes.is_empty())
        .expect("the two regimes must have split");
    let drift_of = |entry: &software_aging::fleet::DiscoveryReport, idx: usize| -> Option<u64> {
        entry.evaluations_log[idx]
            .class_drift_events
            .iter()
            .find(|(class, _)| *class == steady_class)
            .map(|(_, events)| *events)
    };
    if let Some(anchor_idx) =
        (split_idx + 1 < discovery.evaluations_log.len()).then_some(split_idx + 1)
    {
        let anchor = drift_of(discovery, anchor_idx).unwrap_or(0);
        let last = drift_of(discovery, discovery.evaluations_log.len() - 1).unwrap_or(0);
        assert_eq!(
            anchor, last,
            "the steady class drifted after the split — the shifted class must not \
             retrigger it (log: {:?})",
            discovery.evaluations_log
        );
        println!(
            "  steady class quiet after the split: drift events {last} at evaluation \
             {anchor_idx} and at the end alike"
        );
    }

    if let Some(path) = &args.metrics {
        write_metrics(path, discovered.telemetry.as_ref().expect("registry attached"))?;
    }
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        write_trace(path, recorder)?;
    }
    if let Some(path) = &args.json {
        let bench = DiscoveredBench { hand_labelled, discovered };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}
