//! Quickstart: train an aging predictor on monitored run-to-crash
//! executions and watch it predict the time to failure of a fresh run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use software_aging::core::AgingPredictor;
use software_aging::ml::eval::format_duration;
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a leaky deployment: a TPC-W bookstore on Tomcat where the
    //    search servlet leaks 1 MB every ~N/2 visits (the paper's fault
    //    injector with N = 15).
    let train = Scenario::builder("quickstart-train")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build();

    // 2. Train an M5P model tree on one monitored run-to-crash execution.
    let predictor = AgingPredictor::train(&[train], FeatureSet::exp42(), 42)?;
    println!(
        "trained on {} checkpoints; model tree has {} leaves / {} inner nodes",
        predictor.n_training_instances(),
        predictor.model().n_leaves(),
        predictor.model().n_inner_nodes(),
    );

    // 3. Predict on a fresh execution (different seed => different run).
    let test = Scenario::builder("quickstart-test")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build();
    let report = predictor.evaluate_scenario(&test, 1234)?;

    let crash = report.trace.crash.expect("the leak crashes the server");
    println!("test run crashed after {} ({:?})", format_duration(crash.time_secs), crash.kind);
    println!("prediction accuracy: {}", report.evaluation.summary());

    // 4. Show a few checkpoints the way an operator would see them.
    println!("\n   time    predicted TTF       true TTF");
    for i in (0..report.predictions.len()).step_by(report.predictions.len() / 12) {
        println!(
            "{:>7.0}s  {:>14}  {:>13}",
            report.trace.samples[i].time_secs,
            format_duration(report.predictions[i]),
            format_duration(report.actuals[i]),
        );
    }
    Ok(())
}
