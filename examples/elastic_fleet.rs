//! Elastic fleet: instance churn on the event-driven scheduler, adaptive
//! vs frozen under a mid-run workload shift.
//!
//! One "web" service class starts with a founding roster, then the fleet
//! churns while it runs: scripted late joiners enter a third into the
//! horizon, founders are force-retired at the halfway mark, and an
//! autoscale rule tops the live population back up to its floor from a
//! pool of spare clones. The run rides the event-driven epoch scheduler —
//! shards advance independently between leader boundaries instead of
//! meeting at a barrier — and a workload shift a quarter in gives the
//! adaptive run something to adapt to: the frozen baseline rides out the
//! shift (and every membership change) on its generation-0 model, the
//! adaptive run retrains and must land a lower fleet-wide TTF error.
//!
//! ```text
//! cargo run --release --example elastic_fleet [-- --instances 18 \
//!     --shards 3 --hours 6 --json [PATH] --metrics [PATH] --trace [PATH] \
//!     --journal [DIR] --replay]
//! ```
//!
//! `--json` writes both reports (default `BENCH_elastic.json`).
//! `--metrics` attaches one telemetry registry to the adaptive run and
//! **asserts** the elastic instruments are live — the
//! `fleet_instances_live` gauge settled on the report's final population,
//! a non-empty `fleet_scheduler_queue_depth` histogram, one
//! `fleet_leader_step_seconds` sample per leader step — before writing
//! the snapshot (default `METRICS_elastic.json`). `--trace` attaches a
//! flight recorder and **asserts** the membership events are causally
//! wired: every scripted join surfaces as an `InstanceJoined` parented on
//! its shard's `EpochScheduled` event, every scripted retire as a forced
//! `InstanceRetired` (default `TRACE_elastic.json`). `--journal` journals
//! every membership change *and* checkpoint batch durably
//! (default directory `JOURNAL_elastic`); `--replay` restores both halves
//! before ingesting anything live — the adaptation state through the
//! router's replay, the roster through
//! [`MembershipFold`](software_aging::journal::MembershipFold) — and
//! prints the restored live membership and its digest. CI SIGKILLs a
//! `--journal` run mid-flight and restarts it with `--replay` to prove a
//! hard kill loses neither half.

use serde::Serialize;
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{
    AutoscaleRule, ChurnPlan, Fleet, FleetConfig, FleetReport, InstanceSpec, SchedulerConfig,
    WorkloadShift,
};
use software_aging::journal::{Journal, MembershipFold};
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{EventKind, FlightRecorder, Registry};
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct ElasticBench {
    frozen: FleetReport,
    elastic: FleetReport,
}

const CLASS: &str = "web";

fn spec(name: impl Into<String>, seed: u64, horizon_secs: f64) -> InstanceSpec {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    InstanceSpec {
        name: name.into(),
        scenario: before,
        policy,
        seed,
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after }),
        class: ServiceClass::new(CLASS),
    }
}

fn founders(n: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    (0..n).map(|i| spec(format!("web-{i:03}"), 5_000 + i as u64, horizon_secs)).collect()
}

/// The scripted churn: late joiners a third in, founders retired at the
/// halfway epoch, and an autoscale floor holding the fleet near its
/// founding size. Epochs are 15 s, so the epoch math runs off the horizon.
fn churn_plan(n_founders: usize, horizon_secs: f64) -> ChurnPlan {
    let total_epochs = (horizon_secs / 15.0) as u64;
    let join_epoch = total_epochs / 3;
    let retire_epoch = total_epochs / 2;
    let mut plan = ChurnPlan::new()
        .join(join_epoch, spec("late-000", 7_000, horizon_secs))
        .join(join_epoch, spec("late-001", 7_001, horizon_secs))
        .retire(retire_epoch, "web-000")
        .retire(retire_epoch, "web-001");
    plan = plan.autoscale(AutoscaleRule {
        evaluate_every_epochs: (total_epochs / 8).max(1),
        min_live: n_founders,
        max_spawns: 4,
        template: spec("spare", 8_000, horizon_secs),
    });
    plan
}

fn class_config(
    features: &FeatureSet,
    drift_enabled: bool,
) -> Result<Vec<(ServiceClass, ClassSpec)>, Box<dyn std::error::Error>> {
    let training: Vec<_> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let model: Arc<dyn Regressor> =
        Arc::new(AgingPredictor::train(&training, features.clone(), 42)?.model().clone());
    let drift = if drift_enabled {
        DriftConfig {
            error_threshold_secs: 600.0,
            min_observations: 40,
            cooldown_observations: 120,
            ..Default::default()
        }
    } else {
        DriftConfig::disabled()
    };
    let adapt = AdaptConfig::builder()
        .drift(drift)
        .buffer_capacity(2048)
        .min_buffer_to_retrain(120)
        .build();
    Ok(vec![(
        ServiceClass::new(CLASS),
        ClassSpec::builder(LearnerKind::M5p.learner(), model).config(adapt).build(),
    )])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 18,
        shards: 3,
        hours: 6.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_elastic.json",
        "METRICS_elastic.json",
        "TRACE_elastic.json",
        "JOURNAL_elastic",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: elastic_fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
                 [--metrics [PATH]] [--trace [PATH]] [--journal [DIR]] [--replay]"
        );
    })?;
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    let plan = churn_plan(args.instances, horizon);
    println!(
        "training the web-class model … ({} founders, {} scripted joins, {} scripted retires, \
         autoscale floor {}, {:.0} h horizon)\n",
        args.instances,
        plan.joins.len(),
        plan.retires.len(),
        args.instances,
        args.hours
    );

    // Run 1: frozen baseline under the *same* churn — membership changes
    // identically, only adaptation is off.
    println!("── frozen model, churning fleet ──");
    let frozen_router = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_config(&features, false)?)
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let frozen = Fleet::new(founders(args.instances, horizon), config)?
        .with_churn(plan.clone())?
        .with_scheduler(SchedulerConfig::default())
        .run_routed(&frozen_router, &features)?;
    frozen_router.shutdown();
    println!("{frozen}\n");

    // Run 2: same fleet, same churn, adaptation live.
    println!("── adaptive model, churning fleet ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let journal = match &args.journal {
        Some(dir) => Some(Arc::new(Journal::open(dir)?)),
        None => None,
    };
    let mut router_builder = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_config(&features, true)?)
        .config(RouterConfig::builder().retrainer_threads(2).build());
    if let Some(registry) = &registry {
        router_builder = router_builder.telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        router_builder = router_builder.trace(Arc::clone(recorder));
    }
    if let Some(journal) = &journal {
        router_builder = router_builder.journal(Arc::clone(journal));
        if args.replay {
            router_builder = router_builder.replay();
        }
    }
    let router = router_builder.spawn();
    if args.replay {
        // Crash recovery restores both halves of the journal: the
        // adaptation state (checkpoints re-ingested through the router)
        // and the roster (membership records folded to the live set the
        // dead process last journalled).
        let stats = router.stats();
        let restored: u64 = stats.classes.iter().map(|c| c.stats.ingested_checkpoints).sum();
        let mut fold = MembershipFold::new();
        for (_seq, record) in
            &Journal::read(args.journal.as_ref().expect("--replay needs it"))?.records
        {
            fold.apply(record)?;
        }
        println!(
            "replayed journal: {restored} checkpoints restored, {} instances live \
             ({} joins, {} retires, {} crash orphans superseded, membership digest \
             {:016x})",
            fold.live().len(),
            fold.joins(),
            fold.retires(),
            fold.superseded(),
            fold.digest()
        );
    }
    let mut elastic_fleet = Fleet::new(founders(args.instances, horizon), config)?
        .with_churn(plan.clone())?
        .with_scheduler(SchedulerConfig::default());
    if let Some(registry) = &registry {
        elastic_fleet = elastic_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        elastic_fleet = elastic_fleet.with_trace(Arc::clone(recorder));
    }
    if let Some(journal) = &journal {
        elastic_fleet = elastic_fleet.with_journal(Arc::clone(journal));
    }
    let mut elastic = elastic_fleet.run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    let stats = router.shutdown();
    elastic.routing = Some(stats.clone());
    if let Some(registry) = &registry {
        elastic.telemetry = Some(registry.snapshot());
    }
    println!("{elastic}\n");

    let churn = elastic.churn.expect("churn plans report churn stats");
    let scheduler = elastic.scheduler.expect("scheduled runs report scheduler stats");
    println!("── frozen vs adaptive under churn ──");
    let frozen_err = frozen.class_mean_ttf_error_secs(CLASS);
    let elastic_err = elastic.class_mean_ttf_error_secs(CLASS);
    println!(
        "  TTF error {frozen_err:>7.0} s → {elastic_err:>7.0} s  ({:.1}× lower)   \
         {} joins  {} retires  {} autoscale spawns  peak live {}  final live {}",
        frozen_err / elastic_err.max(1.0),
        churn.scripted_joins,
        churn.scripted_retires,
        churn.autoscale_spawns,
        churn.peak_live,
        churn.final_live,
    );
    println!(
        "  scheduler: {} workers drove {} shard tasks, {} leader steps, {} epochs fast-forwarded",
        scheduler.workers,
        scheduler.shard_tasks,
        scheduler.leader_steps,
        scheduler.fast_forwarded_epochs,
    );
    assert_eq!(churn.scripted_joins, plan.joins.len() as u64, "every scripted join must land");
    assert!(
        elastic_err < frozen_err,
        "adaptation must beat the frozen baseline under the shift: {elastic_err} vs {frozen_err}"
    );
    if let (Some(dir), Some(journal)) = (&args.journal, &journal) {
        journal.sync()?;
        let j = elastic.journal.as_ref().expect("journal attached to the fleet");
        println!(
            "  journal: {} records ({} fsyncs, {} rotations) in {dir}",
            j.appended_records, j.fsyncs, j.segment_rotations
        );
    }

    // The metrics acceptance gate: the elastic instruments must show the
    // run was scheduled and churned, not just that a registry existed.
    if let Some(path) = &args.metrics {
        let telemetry = elastic.telemetry.as_ref().expect("registry attached");
        let depth = telemetry
            .histogram("fleet_scheduler_queue_depth", None)
            .expect("scheduled runs record queue depth");
        assert!(depth.count > 0, "every dequeue records the queue depth");
        let live = telemetry.gauge("fleet_instances_live", None).expect("live-population gauge");
        assert_eq!(live as u64, churn.final_live, "the gauge settles on the final population");
        let leader = telemetry
            .histogram("fleet_leader_step_seconds", None)
            .expect("leader windows are timed");
        assert_eq!(leader.count, scheduler.leader_steps, "one sample per leader step");
        println!(
            "telemetry: {} queue-depth samples, {} leader windows timed, {live:.0} live at exit",
            depth.count, leader.count
        );
        write_metrics(path, telemetry)?;
    }

    // The tracing acceptance gate: membership changes must surface as
    // causally wired events — joins parented on their shard's scheduled
    // epoch, scripted retires flagged as forced.
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        let trace = recorder.trace();
        let scheduled: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::EpochScheduled { .. }))
            .collect();
        assert!(!scheduled.is_empty(), "scheduled runs emit EpochScheduled events");
        let joins: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InstanceJoined { .. }))
            .collect();
        assert!(
            joins.len() as u64 >= churn.scripted_joins,
            "every scripted join must be traced: {} events",
            joins.len()
        );
        for join in &joins {
            let parent = join.parent.expect("joins parent on their scheduled epoch");
            assert!(
                scheduled.iter().any(|e| e.seq == parent),
                "join event {} must parent on an EpochScheduled event",
                join.seq
            );
        }
        let forced = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InstanceRetired { forced: true, .. }))
            .count() as u64;
        assert_eq!(forced, churn.forced_retires, "scripted retires must be traced as forced");
        println!(
            "trace: {} scheduled epochs, {} joins and {forced} forced retires causally wired \
             ({} events, {} dropped)",
            scheduled.len(),
            joins.len(),
            trace.len(),
            recorder.dropped()
        );
        write_trace(path, recorder)?;
    }

    if let Some(path) = &args.json {
        let bench = ElasticBench { frozen, elastic };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}
