//! Aging masked by a periodic acquire/release pattern (the paper's
//! Experiment 4.3 in miniature), including the expert feature selection
//! that rescues the model: keep only the Java-heap variables, and use a
//! sliding window long enough to average a whole acquire/release cycle.
//!
//! ```text
//! cargo run --release --example masked_aging
//! ```

use software_aging::core::predictor::evaluate_regressor_on_trace;
use software_aging::ml::eval::format_duration;
use software_aging::ml::linreg::LinRegLearner;
use software_aging::ml::m5p::M5pLearner;
use software_aging::ml::Learner;
use software_aging::monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use software_aging::testbed::{MemLeakSpec, PeriodicSpec, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Training: constant-rate executions only — no periodic pattern.
    let mut traces = vec![Scenario::builder("train-idle")
        .emulated_browsers(100)
        .duration_minutes(60)
        .build()
        .run(21)];
    for (i, n) in [15u32, 30, 75].into_iter().enumerate() {
        traces.push(
            Scenario::builder(format!("train-N{n}"))
                .emulated_browsers(100)
                .memory_leak(MemLeakSpec::new(n))
                .run_to_crash()
                .build()
                .run(22 + i as u64),
        );
    }
    let refs: Vec<_> = traces.iter().collect();

    // Test: 20-minute acquire (N=30) / release (N=75) cycles. Acquisition
    // outpaces release, so memory is retained every cycle: the server ages
    // even though the memory curve waves up and down.
    let test = Scenario::builder("masked")
        .emulated_browsers(100)
        .periodic_cycles(PeriodicSpec::paper_exp43(), 30)
        .run_to_crash()
        .build()
        .run(99);
    let actuals = label_ttf(&test, TTF_CAP_SECS);
    println!(
        "masked-aging run crashed after {}\n",
        format_duration(test.crash.expect("retention crashes the server").time_secs)
    );

    println!("{:<28} {:>14} {:>14} {:>14}", "model/features", "MAE", "S-MAE", "POST-MAE");
    for features in [FeatureSet::exp43_full(), FeatureSet::exp43_heap()] {
        let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
        let m5p = M5pLearner::paper_default().fit(&ds)?;
        let lr = LinRegLearner::default().fit(&ds)?;
        for (name, eval) in [
            ("LinReg", evaluate_regressor_on_trace(&lr, &features, &test, &actuals)),
            ("M5P", evaluate_regressor_on_trace(&m5p, &features, &test, &actuals)),
        ] {
            println!(
                "{:<28} {:>14} {:>14} {:>14}",
                format!("{} {}", features.name(), name),
                format_duration(eval.mae),
                format_duration(eval.s_mae),
                eval.post_mae.map_or("n/a".into(), format_duration),
            );
        }
    }
    println!(
        "\nThe heap-selected M5P extracts the net trend from the waves and is\n\
         the only model that stays accurate in the critical last 10 minutes."
    );
    Ok(())
}
