//! Fleet-scale operation: 120 simulated deployments with mixed workloads
//! and leak severities, sharded across 6 worker threads, monitored and
//! proactively rejuvenated by one shared M5P model over a simulated
//! half-day.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, InstanceSpec};
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};

fn leaky(name: impl Into<String>, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One model serves the whole fleet: train it across the workload range
    // it will see in production (Experiment 4.1 style).
    println!("training the shared M5P model on four run-to-crash executions …");
    let training: Vec<Scenario> = [50, 100, 150, 200]
        .into_iter()
        .map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 15))
        .collect();
    let predictor = AgingPredictor::train(&training, FeatureSet::exp42(), 42)?;
    println!(
        "  {} leaves over {} training instances\n",
        predictor.model().n_leaves(),
        predictor.n_training_instances()
    );

    // 120 deployments: four (workload, leak-severity) service classes with
    // 30 replicas each, every replica on its own sample path.
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let mut specs = Vec::new();
    for (group, (ebs, n)) in [(50, 15), (100, 15), (150, 30), (200, 30)].into_iter().enumerate() {
        for replica in 0..30 {
            let i = specs.len();
            specs.push(InstanceSpec {
                name: format!("svc-{ebs}eb-n{n}-{replica:02}"),
                scenario: leaky(format!("svc-{ebs}eb-n{n}"), ebs, n),
                policy,
                seed: 10_000 + (group as u64) * 1000 + i as u64,
            });
        }
    }

    let config = FleetConfig {
        shards: 6,
        rejuvenation: RejuvenationConfig { horizon_secs: 12.0 * 3600.0, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    let fleet = Fleet::new(specs, config)?;
    println!(
        "operating {} deployments across {} shards for {:.0} simulated hours …\n",
        fleet.len(),
        config.shards,
        config.rejuvenation.horizon_secs / 3600.0
    );
    let report = fleet.run_with_predictor(&predictor);
    println!("{report}\n");

    // Worst and best instances by availability, for a quick fleet health view.
    let mut by_availability = report.instances.clone();
    by_availability.sort_by(|a, b| a.availability.total_cmp(&b.availability));
    println!("lowest-availability deployments:");
    for inst in by_availability.iter().take(3) {
        println!(
            "  {:<20} availability {:.4}  crashes {}  rejuvenations {} (avoided {})",
            inst.name, inst.availability, inst.crashes, inst.rejuvenations, inst.crashes_avoided
        );
    }
    println!("highest-availability deployments:");
    for inst in by_availability.iter().rev().take(3) {
        println!(
            "  {:<20} availability {:.4}  crashes {}  rejuvenations {} (avoided {})",
            inst.name, inst.availability, inst.crashes, inst.rejuvenations, inst.crashes_avoided
        );
    }
    Ok(())
}
