//! Fleet-scale operation: simulated deployments with mixed workloads and
//! leak severities, sharded across worker threads, monitored and
//! proactively rejuvenated by one shared M5P model.
//!
//! ```text
//! cargo run --release --example fleet [-- --instances 120 --shards 6 \
//!     --hours 12 --json [PATH] --metrics [PATH] --trace [PATH]]
//! ```
//!
//! `--json` writes the machine-readable [`FleetReport`] (default path
//! `BENCH_fleet.json`) so bench trajectories can be tracked across
//! commits; `--metrics` attaches a telemetry registry and writes its
//! snapshot (default path `METRICS_fleet.json`); `--trace` attaches a
//! flight recorder and writes its Chrome trace-event JSON (default path
//! `TRACE_fleet.json` — frozen runs trace only the leader's epoch marks,
//! adaptation adds the causal drift→refit→swap chains).

use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{FlightRecorder, Registry};
use software_aging::testbed::Scenario;
use std::sync::Arc;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

fn write_json(report: &FleetReport, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, report.to_json()?)?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 120,
        shards: 6,
        hours: 12.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_fleet.json",
        "METRICS_fleet.json",
        "TRACE_fleet.json",
        "JOURNAL_fleet",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
             [--metrics [PATH]] [--trace [PATH]]"
        );
    })?;
    if args.journal.is_some() {
        return Err("--journal: frozen-model runs have no adaptation state to journal; \
             see hetero_fleet for the durable-journal demonstration"
            .into());
    }

    // One model serves the whole fleet: train it across the workload range
    // it will see in production (Experiment 4.1 style).
    println!("training the shared M5P model on four run-to-crash executions …");
    let training: Vec<Scenario> = [50, 100, 150, 200]
        .into_iter()
        .map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 15))
        .collect();
    let predictor = AgingPredictor::train(&training, FeatureSet::exp42(), 42)?;
    println!(
        "  {} leaves over {} training instances\n",
        predictor.model().n_leaves(),
        predictor.n_training_instances()
    );

    // Deployments in four (workload, leak-severity) service classes,
    // every replica on its own sample path.
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let classes = [(50u64, 15u32), (100, 15), (150, 30), (200, 30)];
    let mut specs = Vec::new();
    while specs.len() < args.instances {
        let (group, (ebs, n)) = {
            let g = specs.len() % classes.len();
            (g, classes[g])
        };
        let i = specs.len();
        specs.push(InstanceSpec::new(
            format!("svc-{ebs}eb-n{n}-{i:03}"),
            leaky(format!("svc-{ebs}eb-n{n}"), ebs, n),
            policy,
            10_000 + (group as u64) * 1000 + i as u64,
        ));
    }

    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig {
            horizon_secs: args.hours * 3600.0,
            ..Default::default()
        },
        counterfactual_horizon_secs: 3600.0,
    };
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let mut fleet = Fleet::new(specs, config)?;
    if let Some(registry) = &registry {
        fleet = fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        fleet = fleet.with_trace(Arc::clone(recorder));
    }
    println!(
        "operating {} deployments across {} shards for {:.0} simulated hours …\n",
        fleet.len(),
        config.shards,
        config.rejuvenation.horizon_secs / 3600.0
    );
    let report = fleet.run_with_predictor(&predictor);
    println!("{report}\n");

    // Worst and best instances by availability, for a quick fleet health view.
    let mut by_availability = report.instances.clone();
    by_availability.sort_by(|a, b| a.availability.total_cmp(&b.availability));
    println!("lowest-availability deployments:");
    for inst in by_availability.iter().take(3) {
        println!(
            "  {:<20} availability {:.4}  crashes {}  rejuvenations {} (avoided {})",
            inst.name, inst.availability, inst.crashes, inst.rejuvenations, inst.crashes_avoided
        );
    }
    println!("highest-availability deployments:");
    for inst in by_availability.iter().rev().take(3) {
        println!(
            "  {:<20} availability {:.4}  crashes {}  rejuvenations {} (avoided {})",
            inst.name, inst.availability, inst.crashes, inst.rejuvenations, inst.crashes_avoided
        );
    }

    if let Some(path) = &args.json {
        write_json(&report, path)?;
    }
    if let Some(path) = &args.metrics {
        write_metrics(path, report.telemetry.as_ref().expect("registry attached"))?;
    }
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        write_trace(path, recorder)?;
    }
    Ok(())
}
