//! Proactive rejuvenation driven by the predictor (the extension layer from
//! the paper's introduction and TR [29]): compare reactive operation,
//! time-based restarts and prediction-triggered restarts of a leaky server
//! over a simulated day.
//!
//! ```text
//! cargo run --release --example rejuvenation
//! ```

use software_aging::core::rejuvenation::{evaluate_policy, RejuvenationConfig, RejuvenationPolicy};
use software_aging::core::AgingPredictor;
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::builder("leaky-service")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build();

    let predictor = AgingPredictor::train(std::slice::from_ref(&scenario), FeatureSet::exp42(), 3)?;
    let config = RejuvenationConfig {
        horizon_secs: 24.0 * 3600.0,
        rejuvenation_downtime_secs: 60.0,
        crash_downtime_secs: 600.0,
        warmup_checkpoints: 12,
    };

    println!("operating a leaky server for 24 simulated hours:\n");
    println!(
        "{:<24} {:>8} {:>14} {:>11} {:>13} {:>14}",
        "policy", "crashes", "rejuvenations", "downtime", "availability", "lost requests"
    );
    for policy in [
        RejuvenationPolicy::Reactive,
        RejuvenationPolicy::TimeBased { interval_secs: 1200.0 },
        RejuvenationPolicy::TimeBased { interval_secs: 3600.0 },
        RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 },
    ] {
        let r = evaluate_policy(&scenario, policy, Some(&predictor), &config, 17)?;
        println!(
            "{:<24} {:>8} {:>14} {:>10.0}s {:>12.4}% {:>14.0}",
            r.policy,
            r.crashes,
            r.rejuvenations,
            r.downtime_secs,
            100.0 * r.availability,
            r.lost_requests
        );
    }
    println!(
        "\nThe predictive policy restarts only when a crash approaches, so it\n\
         avoids both the unplanned-crash downtime of the reactive policy and\n\
         the excessive restarts of aggressive time-based rejuvenation."
    );
    Ok(())
}
