//! Self-tuning thresholds: a heterogeneous fleet with **no hand-picked
//! per-class constants**.
//!
//! The hetero_fleet example needs an operator who knows that the "leak"
//! class wants a 600 s drift level and the "steady" class a 3600 s one.
//! This example deletes that knowledge: both classes share **one**
//! `AdaptConfig` (the default 900 s drift level) and **one**
//! [`QuantileAdaptive`] policy `Arc`. After every model publish, each
//! class's [`aging_adapt::AdaptationPipeline`] re-derives its own drift
//! level and predictive-rejuvenation trigger from the error quantiles
//! *that class* observed under the new generation — heterogeneous tuning
//! becomes self-service.
//!
//! ```text
//! cargo run --release --example self_tuning_fleet [-- --instances 24 \
//!     --shards 4 --hours 6 --json [PATH] --metrics [PATH] --trace [PATH]]
//! ```
//!
//! Two thirds of `--instances` form the shifting class, one third the
//! steady class. `--json` writes both reports (default path
//! `BENCH_self_tuning.json`); `--metrics` attaches one telemetry registry
//! to the self-tuned run and writes its snapshot (default path
//! `METRICS_self_tuning.json`); `--trace` attaches one flight recorder to
//! the self-tuned run — the resulting Chrome trace (default path
//! `TRACE_self_tuning.json`) shows each class's threshold re-derivations
//! parented on the publish that triggered them.

use serde::Serialize;
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, QuantileAdaptive, RouterConfig,
    ServiceClass, ThresholdPolicy,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{FlightRecorder, Registry};
use software_aging::testbed::Scenario;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct SelfTuningBench {
    frozen: FleetReport,
    self_tuned: FleetReport,
}

fn specs(n_leak: usize, n_steady: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let steady = leaky("steady-leak", 100, 30);
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let leak_class = (0..n_leak).map(move |i| InstanceSpec {
        name: format!("leak-{i:03}"),
        scenario: before.clone(),
        policy,
        seed: 5_000 + i as u64,
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
        class: ServiceClass::new("leak"),
    });
    let steady_class = (0..n_steady).map(move |i| {
        InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), policy, 9_000 + i as u64)
            .with_class("steady")
    });
    leak_class.chain(steady_class).collect()
}

/// Both classes get the SAME config — the whole point. `drift_enabled:
/// false` is the frozen baseline.
fn class_configs(
    features: &FeatureSet,
    drift_enabled: bool,
) -> Result<Vec<(ServiceClass, ClassSpec)>, Box<dyn std::error::Error>> {
    let leak_training: Vec<Scenario> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let leak_model: Arc<dyn Regressor> =
        Arc::new(AgingPredictor::train(&leak_training, features.clone(), 42)?.model().clone());
    let steady_model: Arc<dyn Regressor> = Arc::new(
        AgingPredictor::train(&[leaky("steady-train", 100, 45)], features.clone(), 42)?
            .model()
            .clone(),
    );
    // ONE shared adaptation config: default drift level (900 s), nothing
    // tuned per class.
    let shared = AdaptConfig::builder()
        .drift(if drift_enabled {
            DriftConfig { min_observations: 40, cooldown_observations: 120, ..Default::default() }
        } else {
            DriftConfig::disabled()
        })
        .buffer_capacity(2048)
        .min_buffer_to_retrain(120)
        .build();
    // ONE shared policy instance: each class's pipeline consults it with
    // its own error window, so it still tunes every class independently.
    let policy: Arc<dyn ThresholdPolicy> = Arc::new(QuantileAdaptive::default());
    Ok(vec![
        (
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), leak_model)
                .config(shared)
                .policy(Arc::clone(&policy))
                .build(),
        ),
        (
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), steady_model)
                .config(shared)
                .policy(policy)
                .build(),
        ),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 24,
        shards: 4,
        hours: 6.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_self_tuning.json",
        "METRICS_self_tuning.json",
        "TRACE_self_tuning.json",
        "JOURNAL_self_tuning",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: self_tuning_fleet [--instances N] [--shards N] [--hours H] \
                 [--json [PATH]] [--metrics [PATH]] [--trace [PATH]]"
        );
    })?;
    if args.journal.is_some() {
        return Err("--journal: this example does not wire a journal; \
             see hetero_fleet for the durable-journal demonstration"
            .into());
    }
    let n_leak = (args.instances * 2 / 3).max(1);
    let n_steady = (args.instances - n_leak).max(1);
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    println!(
        "training per-class models … ({n_leak} shifting + {n_steady} steady deployments, \
         {:.0} h horizon, zero hand-picked thresholds)\n",
        args.hours
    );

    // Run 1: per-class frozen baseline (drift disabled — every class
    // rides out the shift on its generation-0 model).
    println!("── frozen per-class models ──");
    let frozen_router = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, false)?)
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let frozen = Fleet::new(specs(n_leak, n_steady, horizon), config)?
        .run_routed(&frozen_router, &features)?;
    frozen_router.shutdown();
    println!("{frozen}\n");

    // Run 2: same fleet and seeds, one shared config + one shared
    // QuantileAdaptive policy — every class derives its own thresholds.
    println!("── self-tuning thresholds (shared config, shared policy) ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let mut router_builder = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, true)?)
        .config(RouterConfig::builder().retrainer_threads(2).build());
    if let Some(registry) = &registry {
        router_builder = router_builder.telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        router_builder = router_builder.trace(Arc::clone(recorder));
    }
    let router = router_builder.spawn();
    let mut tuned_fleet = Fleet::new(specs(n_leak, n_steady, horizon), config)?;
    if let Some(registry) = &registry {
        tuned_fleet = tuned_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        tuned_fleet = tuned_fleet.with_trace(Arc::clone(recorder));
    }
    let mut self_tuned = tuned_fleet.run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    let stats = router.shutdown();
    // `run_routed` snapshots the stats mid-drain; replace them with the
    // settled post-quiesce numbers so console and JSON artifact agree
    // (and re-snapshot the telemetry for the same reason).
    self_tuned.routing = Some(stats.clone());
    if let Some(registry) = &registry {
        self_tuned.telemetry = Some(registry.snapshot());
    }
    println!("{self_tuned}\n");

    println!("── frozen vs self-tuned, per class ──");
    for class in ["leak", "steady"] {
        let frozen_err = frozen.class_mean_ttf_error_secs(class);
        let tuned_err = self_tuned.class_mean_ttf_error_secs(class);
        let s = stats.class(&ServiceClass::new(class)).expect("registered class");
        let rejuvenate = s
            .effective_rejuvenation_threshold_secs
            .map_or("spec (420 s)".to_string(), |t| format!("{t:.0} s"));
        println!(
            "  {class:<8} TTF error {frozen_err:>7.0} s → {tuned_err:>7.0} s  \
             ({:.1}× lower)   gen {}  drift level {:.0} s  rejuvenate {}",
            frozen_err / tuned_err.max(1.0),
            s.generation,
            s.effective_error_threshold_secs,
            rejuvenate,
        );
    }
    println!(
        "  bus: {} checkpoints ingested, {} dropped, {} unrouted",
        stats.ingested_checkpoints, stats.dropped_checkpoints, stats.unrouted_checkpoints
    );

    if let Some(path) = &args.metrics {
        write_metrics(path, self_tuned.telemetry.as_ref().expect("registry attached"))?;
    }
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        write_trace(path, recorder)?;
    }
    if let Some(path) = &args.json {
        let bench = SelfTuningBench { frozen, self_tuned };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}
