//! Adaptive vs frozen prediction under a mid-run workload shift.
//!
//! The paper's thesis in one experiment: a fleet is trained for a
//! slow-aging regime, then the workload shifts mid-run to an aggressive
//! leak the model has never seen. The frozen model keeps mispredicting for
//! the rest of the horizon; the adaptive service notices the drift in its
//! prediction errors, retrains on the labelled crash epochs streaming in
//! over the checkpoint bus, and hot-swaps new model generations into the
//! running fleet — without ever pausing the worker pool.
//!
//! ```text
//! cargo run --release --example adaptive_fleet [-- --instances 36 \
//!     --shards 4 --hours 8 --json [PATH] --metrics [PATH] --trace [PATH]]
//! ```
//!
//! `--json` writes both reports (default path `BENCH_adaptive_fleet.json`);
//! `--metrics` attaches one telemetry registry to the adaptive run (fleet
//! *and* service side) and writes its snapshot (default path
//! `METRICS_adaptive_fleet.json`); `--trace` attaches one flight recorder
//! to the adaptive run and writes its Chrome trace-event JSON (default
//! path `TRACE_adaptive_fleet.json`) — the drift→trigger→refit→publish→swap
//! causal chains, loadable in Perfetto.

use serde::Serialize;
use software_aging::adapt::{AdaptConfig, AdaptiveService, DriftConfig};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::ml::m5p::M5pLearner;
use software_aging::ml::{DynLearner, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{FlightRecorder, Registry};
use software_aging::testbed::Scenario;
use std::sync::Arc;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct AdaptiveBench {
    frozen: FleetReport,
    adaptive: FleetReport,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 36,
        shards: 4,
        hours: 8.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_adaptive_fleet.json",
        "METRICS_adaptive_fleet.json",
        "TRACE_adaptive_fleet.json",
        "JOURNAL_adaptive_fleet",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: adaptive_fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
                 [--metrics [PATH]] [--trace [PATH]]"
        );
    })?;
    if args.journal.is_some() {
        return Err("--journal: this example does not wire a journal; \
             see hetero_fleet for the durable-journal demonstration"
            .into());
    }

    // The training regime: slow leaks (N = 75) across a workload range.
    println!("training the shared M5P model on the slow-leak regime …");
    let training: Vec<Scenario> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let features = FeatureSet::exp42();
    let predictor = AgingPredictor::train(&training, features.clone(), 42)?;

    // The shift: a quarter into the horizon, every restart lands on an
    // aggressive leak (N = 15 at 150 EBs) the model has never seen.
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let shift_secs = args.hours * 3600.0 * 0.25;
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let specs: Vec<InstanceSpec> = (0..args.instances)
        .map(|i| InstanceSpec {
            name: format!("svc-{i:03}"),
            scenario: before.clone(),
            policy,
            seed: 5_000 + i as u64,
            shift: Some(WorkloadShift { after_secs: shift_secs, scenario: after.clone() }),
            class: Default::default(),
        })
        .collect();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig {
            horizon_secs: args.hours * 3600.0,
            ..Default::default()
        },
        counterfactual_horizon_secs: 3600.0,
    };
    println!(
        "{} deployments, {:.0} h horizon, workload shifts {:.0} h in\n",
        args.instances,
        args.hours,
        shift_secs / 3600.0
    );

    // Run 1: the frozen model rides out the shift.
    println!("── frozen model ──");
    let frozen_report = Fleet::new(specs.clone(), config)?.run_with_predictor(&predictor);
    println!("{frozen_report}\n");

    // Run 2: same fleet, same seeds, but the model is served by the
    // adaptation service: drift in the prediction errors triggers
    // retraining on the labelled crash epochs, and new generations are
    // hot-swapped into the epoch loop.
    println!("── adaptive service ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let learner: Arc<dyn DynLearner> = Arc::new(M5pLearner::paper_default());
    let initial: Arc<dyn Regressor> = Arc::new(predictor.model().clone());
    let mut service_builder =
        AdaptiveService::builder(learner, features.variables().to_vec(), initial).config(
            AdaptConfig::builder()
                .drift(DriftConfig {
                    error_threshold_secs: 600.0,
                    min_observations: 40,
                    cooldown_observations: 120,
                    ..Default::default()
                })
                .buffer_capacity(2048)
                .min_buffer_to_retrain(120)
                .build(),
        );
    if let Some(registry) = &registry {
        service_builder = service_builder.telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        service_builder = service_builder.trace(Arc::clone(recorder));
    }
    let service = service_builder.spawn();
    let mut adaptive_fleet = Fleet::new(specs, config)?;
    if let Some(registry) = &registry {
        adaptive_fleet = adaptive_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        adaptive_fleet = adaptive_fleet.with_trace(Arc::clone(recorder));
    }
    let mut adaptive_report = adaptive_fleet.run_adaptive(&service, &features);
    println!("{adaptive_report}\n");
    let stats = service.shutdown();
    // Re-snapshot after the shutdown drain so late refits are counted.
    if let Some(registry) = &registry {
        adaptive_report.telemetry = Some(registry.snapshot());
    }

    println!("── static vs adaptive ──");
    println!(
        "  mean TTF error     {:>8.0} s   →   {:>8.0} s  ({:.1}× lower)",
        frozen_report.mean_ttf_error_secs,
        adaptive_report.mean_ttf_error_secs,
        frozen_report.mean_ttf_error_secs / adaptive_report.mean_ttf_error_secs.max(1.0)
    );
    println!(
        "  crashes suffered   {:>8}     →   {:>8}",
        frozen_report.crashes, adaptive_report.crashes
    );
    println!(
        "  crashes avoided    {:>8}     →   {:>8}",
        frozen_report.crashes_avoided, adaptive_report.crashes_avoided
    );
    println!(
        "  availability       {:>8.4}     →   {:>8.4}",
        frozen_report.availability, adaptive_report.availability
    );
    println!(
        "  model generations  {} published over {} retrains ({} drift events, {} checkpoints ingested)",
        stats.generations_published,
        stats.retrains,
        stats.drift_events,
        stats.ingested_checkpoints
    );

    if let Some(path) = &args.metrics {
        write_metrics(path, adaptive_report.telemetry.as_ref().expect("registry attached"))?;
    }
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        write_trace(path, recorder)?;
    }
    if let Some(path) = &args.json {
        let bench = AdaptiveBench { frozen: frozen_report, adaptive: adaptive_report };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}
