//! Two-resource aging and root-cause analysis (the paper's Experiment 4.4
//! in miniature): memory leaks and thread leaks age the server together,
//! the model is trained only on single-resource executions, and the learned
//! tree is inspected for root-cause hints.
//!
//! ```text
//! cargo run --release --example two_resource_aging
//! ```

use software_aging::core::{AgingPredictor, RootCauseReport};
use software_aging::ml::eval::format_duration;
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario, ThreadLeakSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Single-resource training runs only: three memory rates, three thread
    // rates. The model never sees both resources injected together.
    let mut training = Vec::new();
    for n in [15u32, 30, 75] {
        training.push(
            Scenario::builder(format!("mem-N{n}"))
                .emulated_browsers(100)
                .memory_leak(MemLeakSpec::new(n))
                .run_to_crash()
                .build(),
        );
    }
    for (m, t) in [(15u32, 120u32), (30, 90), (45, 60)] {
        training.push(
            Scenario::builder(format!("thr-M{m}T{t}"))
                .emulated_browsers(100)
                .thread_leak(ThreadLeakSpec::new(m, t))
                .run_to_crash()
                .build(),
        );
    }
    let predictor = AgingPredictor::train(&training, FeatureSet::exp44(), 5)?;

    // Test: both resources at once, rates changing every 30 minutes.
    let test = Scenario::builder("two-resource")
        .emulated_browsers(100)
        .idle_phase_minutes(30)
        .leak_phase_minutes(30, MemLeakSpec::new(30), Some(ThreadLeakSpec::new(30, 90)))
        .leak_phase_minutes(30, MemLeakSpec::new(15), Some(ThreadLeakSpec::new(15, 120)))
        .final_leak_phase(MemLeakSpec::new(75), Some(ThreadLeakSpec::new(45, 60)))
        .build();
    let report = predictor.evaluate_scenario_frozen_truth(&test, 11)?;

    println!("accuracy on a never-seen two-resource scenario:");
    println!("  {}", report.evaluation.summary());
    if let Some(crash) = report.trace.crash {
        println!("  crash after {} ({:?})", format_duration(crash.time_secs), crash.kind);
    }

    // Root cause: "interpreting the models generated via ML models has an
    // additional interest besides prediction" (Section 4.4).
    let root_cause = RootCauseReport::from_model(predictor.model());
    println!("\n{}", root_cause.summary());
    println!("first two levels of the tree:\n{}", predictor.model().render(Some(2)));
    Ok(())
}
