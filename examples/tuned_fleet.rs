//! Self-optimising policy search: the fleet tunes its own rejuvenation
//! policies by counterfactual replay of its checkpoint journal.
//!
//! Three phases:
//!
//! 1. **Record** — a journalled two-class routed run operates under a
//!    deliberately *detuned* policy: drift detection off, no retrain
//!    schedule, so the shifting "leak" class rides out its workload shift
//!    on a stale generation-0 model while every batch lands in the
//!    journal.
//! 2. **Search** — an offline [`Tuner::search`] replays that journal
//!    under ALNS-generated candidate policies
//!    ([`replay_scored`](software_aging::adapt::replay::replay_scored)
//!    re-predicts every row from the candidate's own evolving model), and
//!    the promotion gate checks the winner beats the detuned incumbent by
//!    the configured margin. The example **asserts** the winner cuts the
//!    leak class's replayed mean TTF error by ≥ 20 % and that the search
//!    is bit-reproducible for a fixed seed, then writes the full search
//!    trajectory as `TUNE_tuned.json` — CI validates it with
//!    `check_tune` (monotone best-objective trajectory, every promotion
//!    beats the margin).
//! 3. **Go live** — the same fleet runs again with a
//!    [`FleetTuner`] attached ([`Fleet::with_tuner`]): a background
//!    thread searches off the live journal while the fleet runs and
//!    publishes every gate-approved promotion into the router via
//!    `apply_spec`, re-configuring the running system mid-flight. The
//!    report's `tuning` block records what the tuner did.
//!
//! ```text
//! cargo run --release --example tuned_fleet [-- --instances 12 \
//!     --shards 4 --hours 4 --json [PATH] --metrics [PATH] \
//!     --trace [PATH] --journal [DIR]]
//! ```

use serde::Serialize;
use software_aging::adapt::{AdaptiveRouter, RouterConfig, ServiceClass};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::journal::Journal;
use software_aging::ml::Regressor;
use software_aging::monitor::FeatureSet;
use software_aging::obs::{FlightRecorder, Registry};
use software_aging::tune::{
    CandidateRecord, Evaluator, FleetTuner, PolicyPoint, SearchOutcome, TuneConfig, TunedClass,
    Tuner,
};
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Path of the machine-readable search-trajectory artifact CI validates
/// with `check_tune`.
const TUNE_ARTIFACT: &str = "TUNE_tuned.json";

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct TunedBench {
    detuned: FleetReport,
    tuned: FleetReport,
}

/// The `TUNE_*.json` artifact: one search trajectory per class plus the
/// gate margin every promotion must beat.
#[derive(Debug, Serialize)]
struct TuneArtifact {
    min_improvement: f64,
    classes: Vec<ClassArtifact>,
}

#[derive(Debug, Serialize)]
struct ClassArtifact {
    class: String,
    incumbent_objective_secs: Option<f64>,
    best_objective_secs: Option<f64>,
    improvement: Option<f64>,
    promoted: bool,
    candidates: Vec<CandidateRecord>,
    promotions: Vec<PromotionArtifact>,
}

#[derive(Debug, Serialize)]
struct PromotionArtifact {
    incumbent_objective_secs: Option<f64>,
    candidate_objective_secs: Option<f64>,
}

fn specs(n_leak: usize, n_steady: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let steady = leaky("steady-leak", 100, 30);
    // Predictive with a deliberately low trigger: every checkpoint is
    // predicted (labelled data only flows from predicted checkpoints),
    // but the threshold sits far below what the models forecast, so
    // epochs end in crashes that label their full checkpoint history —
    // a dense ground-truth stream for the journal and the search.
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 30.0, consecutive: 4 };
    let leak_class = (0..n_leak).map(move |i| InstanceSpec {
        name: format!("leak-{i:03}"),
        scenario: before.clone(),
        policy,
        seed: 5_000 + i as u64,
        // Early shift: most of the journal records the post-shift regime
        // the stale model mispredicts — the signal the search must find.
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.15, scenario: after.clone() }),
        class: ServiceClass::new("leak"),
    });
    let steady_class = (0..n_steady).map(move |i| {
        InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), policy, 9_000 + i as u64)
            .with_class("steady")
    });
    leak_class.chain(steady_class).collect()
}

/// The (leak, steady) generation-0 model pair.
type InitialModels = (Arc<dyn Regressor>, Arc<dyn Regressor>);

/// Per-class generation-0 models: the leak model is trained on pre-shift
/// regimes only (it goes stale the moment the shift hits), the steady
/// model on its own static regime.
fn initial_models(features: &FeatureSet) -> Result<InitialModels, Box<dyn std::error::Error>> {
    let leak_training: Vec<_> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let leak: Arc<dyn Regressor> =
        Arc::new(AgingPredictor::train(&leak_training, features.clone(), 42)?.model().clone());
    let steady: Arc<dyn Regressor> = Arc::new(
        AgingPredictor::train(&[leaky("steady-train", 100, 45)], features.clone(), 42)?
            .model()
            .clone(),
    );
    Ok((leak, steady))
}

/// The deliberately detuned incumbent: no drift detection, no retrain
/// schedule — the class never adapts, whatever the journal shows.
fn detuned_point() -> PolicyPoint {
    PolicyPoint { drift_enabled: false, retrain_every: None, ..PolicyPoint::default() }
}

fn class_artifact(class: &str, outcome: &SearchOutcome) -> ClassArtifact {
    ClassArtifact {
        class: class.to_string(),
        incumbent_objective_secs: outcome.incumbent_objective_secs,
        best_objective_secs: outcome.best_objective_secs,
        improvement: outcome.improvement,
        promoted: outcome.promoted,
        candidates: outcome.candidates.clone(),
        promotions: if outcome.promoted {
            vec![PromotionArtifact {
                incumbent_objective_secs: outcome.incumbent_objective_secs,
                candidate_objective_secs: outcome.best_objective_secs,
            }]
        } else {
            Vec::new()
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 12,
        shards: 4,
        hours: 4.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_tuned.json",
        "METRICS_tuned.json",
        "TRACE_tuned.json",
        "JOURNAL_tuned",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: tuned_fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
                 [--metrics [PATH]] [--trace [PATH]] [--journal [DIR]]"
        );
    })?;
    let journal_dir = args.journal.clone().unwrap_or_else(|| "JOURNAL_tuned".to_string());
    let n_leak = (args.instances * 2 / 3).max(1);
    let n_steady = (args.instances - n_leak).max(1);
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let feature_names = features.variables().to_vec();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    let (leak_model, steady_model) = initial_models(&features)?;
    let leak = ServiceClass::new("leak");
    let steady = ServiceClass::new("steady");
    let detuned = detuned_point();

    // ── Phase 1: record a journalled run under the detuned policy ──
    // Fresh journal: the search must score exactly this run's stream.
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!(
        "── phase 1: journalled detuned run ({n_leak} shifting + {n_steady} steady \
         deployments, {:.0} h horizon) ──",
        args.hours
    );
    let journal = Arc::new(Journal::open(&journal_dir)?);
    let recording_router = AdaptiveRouter::builder(feature_names.clone())
        .class(leak.clone(), detuned.to_spec(Arc::clone(&leak_model)))
        .class(steady.clone(), detuned.to_spec(Arc::clone(&steady_model)))
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .journal(Arc::clone(&journal))
        .spawn();
    let detuned_report = Fleet::new(specs(n_leak, n_steady, horizon), config)?
        .with_journal(Arc::clone(&journal))
        .run_routed(&recording_router, &features)?;
    let recording_stats = recording_router.shutdown();
    journal.sync()?;
    assert_eq!(recording_stats.journal_errors, 0, "the recording run must journal cleanly");
    assert_eq!(
        recording_stats.generations_published, 0,
        "the detuned policy must never retrain — that is the point"
    );
    println!("{detuned_report}\n");

    // ── Phase 2: offline search over the recorded journal ──
    println!("── phase 2: ALNS policy search by counterfactual replay ──");
    let tune_config =
        TuneConfig { seed: 42, candidates: 16, retrain_penalty_secs: 5.0, ..TuneConfig::default() };
    let tuner = Tuner::new(tune_config.clone());
    let mut artifact =
        TuneArtifact { min_improvement: tune_config.gate.min_improvement, classes: Vec::new() };
    let mut leak_outcome = None;
    for (class, initial) in
        [(leak.clone(), Arc::clone(&leak_model)), (steady.clone(), Arc::clone(&steady_model))]
    {
        let evaluator = Evaluator::new(&journal_dir, feature_names.clone(), class.clone(), initial)
            .retrain_penalty_secs(tune_config.retrain_penalty_secs);
        let outcome = tuner.search(&evaluator, &detuned)?;
        println!(
            "  {class:<8} incumbent {} s → best {} s  improvement {}  promoted {}  \
             ({} candidates, {} accepted)",
            fmt_opt(outcome.incumbent_objective_secs),
            fmt_opt(outcome.best_objective_secs),
            match outcome.improvement {
                Some(i) => format!("{:.1} %", i * 100.0),
                None => "n/a".into(),
            },
            outcome.promoted,
            outcome.candidates.len(),
            outcome.accepted,
        );
        // Bit-reproducibility: the same seed over the same journal and
        // incumbent must retrace the identical search.
        let again = tuner.search(&evaluator, &detuned)?;
        assert_eq!(outcome, again, "{class}: fixed-seed searches must be bit-identical");
        artifact.classes.push(class_artifact(class.as_str(), &outcome));
        if class == leak {
            leak_outcome = Some(outcome);
        }
    }
    let leak_outcome = leak_outcome.expect("leak class searched");
    // The acceptance gate: the search must find (and the gate promote) a
    // policy whose replayed objective beats the detuned incumbent by
    // ≥ 20 % — retraining beats never-retraining on a shifted stream.
    assert!(leak_outcome.promoted, "the leak winner must clear the promotion gate");
    let improvement = leak_outcome.improvement.expect("both objectives finite");
    assert!(
        improvement >= 0.20,
        "the leak winner must beat the detuned incumbent by ≥ 20 %, got {:.1} %",
        improvement * 100.0
    );
    std::fs::write(TUNE_ARTIFACT, serde_json::to_string_pretty(&artifact)?)?;
    println!("  wrote {TUNE_ARTIFACT}\n");

    // ── Phase 3: the same fleet, tuning itself live ──
    println!("── phase 3: live run with the tuner attached ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let live_journal = Arc::new(Journal::open(&journal_dir)?);
    let mut router_builder = AdaptiveRouter::builder(feature_names.clone())
        .class(leak.clone(), detuned.to_spec(Arc::clone(&leak_model)))
        .class(steady.clone(), detuned.to_spec(Arc::clone(&steady_model)))
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .journal(Arc::clone(&live_journal));
    if let Some(registry) = &registry {
        router_builder = router_builder.telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        router_builder = router_builder.trace(Arc::clone(recorder));
    }
    let router = router_builder.spawn();
    let fleet_tuner = FleetTuner::new(
        &journal_dir,
        feature_names.clone(),
        tune_config.clone(),
        vec![
            TunedClass {
                class: leak.clone(),
                incumbent: detuned.clone(),
                initial: Arc::clone(&leak_model),
            },
            TunedClass {
                class: steady.clone(),
                incumbent: detuned.clone(),
                initial: Arc::clone(&steady_model),
            },
        ],
    );
    let mut tuned_fleet = Fleet::new(specs(n_leak, n_steady, horizon), config)?
        .with_journal(Arc::clone(&live_journal))
        .with_tuner(fleet_tuner);
    if let Some(registry) = &registry {
        tuned_fleet = tuned_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        tuned_fleet = tuned_fleet.with_trace(Arc::clone(recorder));
    }
    let mut tuned_report = tuned_fleet.run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    let live_stats = router.shutdown();
    tuned_report.routing = Some(live_stats.clone());
    if let Some(registry) = &registry {
        tuned_report.telemetry = Some(registry.snapshot());
    }
    println!("{tuned_report}\n");

    let tuning = tuned_report.tuning.as_ref().expect("a tuner was attached");
    println!(
        "policy search: {} rounds, {} candidates, {} promotions, {} spec swaps applied live",
        tuning.rounds, tuning.candidates, tuning.promotions, live_stats.applied_specs
    );
    // Live promotions land as router spec swaps, one per promotion.
    assert_eq!(
        live_stats.applied_specs, tuning.promotions,
        "every promotion must reach the router as a spec swap"
    );
    for class in [&leak, &steady] {
        let detuned_err = detuned_report.class_mean_ttf_error_secs(class.as_str());
        let tuned_err = tuned_report.class_mean_ttf_error_secs(class.as_str());
        println!(
            "  {class:<8} TTF error {detuned_err:>7.0} s detuned → {tuned_err:>7.0} s under live \
             tuning"
        );
    }

    if let Some(path) = &args.metrics {
        let telemetry = tuned_report.telemetry.as_ref().expect("registry attached");
        if tuning.rounds > 0 {
            assert!(
                telemetry.counter_total("tune_rounds_total") == tuning.rounds,
                "tune_rounds_total must match the report's round count"
            );
        }
        write_metrics(path, telemetry)?;
    }
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        write_trace(path, recorder)?;
    }
    if let Some(path) = &args.json {
        let bench = TunedBench { detuned: detuned_report, tuned: tuned_report };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(secs) => format!("{secs:.0}"),
        None => "∞".into(),
    }
}
