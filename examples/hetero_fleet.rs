//! Heterogeneous fleet: per-class adaptive model services under a shift
//! injected into one class only.
//!
//! Two service classes share one fleet: a "leak" class whose workload
//! shifts to an aggressive leak a quarter into the horizon, and a
//! "steady" class that never changes. A single global model would let the
//! shifted class drag the steady class's predictions around; the
//! [`AdaptiveRouter`] keeps one model service, drift monitor and sliding
//! buffer per class over a shared retrainer pool, so the shift retrains
//! the leak class alone — the steady class stays on generation 0 and its
//! outcomes are identical to a fleet that never contained the other class.
//!
//! ```text
//! cargo run --release --example hetero_fleet [-- --instances 24 \
//!     --shards 4 --hours 6 --json [PATH] --metrics [PATH] --trace [PATH] \
//!     --journal [DIR] --replay]
//! ```
//!
//! Two thirds of `--instances` form the shifting class, one third the
//! steady class. `--json` writes both reports (default path
//! `BENCH_hetero.json`); `--metrics` attaches one telemetry registry to
//! the routed run (fleet *and* router side), **asserts** the snapshot is
//! live — non-zero barrier-wait and refit-duration histograms, swap
//! latency once a generation was published, per-class shed counters
//! summing to the router's drop counter — and writes it (default path
//! `METRICS_hetero.json`); `--trace` attaches one flight recorder to the
//! routed run, **asserts** that every published generation resolves a
//! complete drift→trigger→refit→publish→swap causal chain through
//! [`Trace::causal_chain`], writes the Chrome trace-event JSON (default
//! path `TRACE_hetero.json`) and round-trips it through the same format
//! check CI applies (valid JSON, monotone seqs, resolvable parents).
//! `--journal` attaches a durable checkpoint journal to the routed run
//! (default directory `JOURNAL_hetero`): every batch is journalled
//! before it is buffered, so killing the process mid-run loses at most
//! one fsync window. `--replay` restores the adaptation state from that
//! journal before ingesting anything live — the crash-recovery restart;
//! CI SIGKILLs a `--journal` run and restarts it with `--replay` to
//! prove the journal survives a hard kill.
//!
//! [`Trace::causal_chain`]: software_aging::obs::Trace::causal_chain

use serde::Serialize;
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::journal::Journal;
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::{EventKind, FlightRecorder, Registry, Trace};
use software_aging::testbed::Scenario;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, write_trace, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct HeteroBench {
    frozen: FleetReport,
    routed: FleetReport,
}

fn specs(n_leak: usize, n_steady: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let steady = leaky("steady-leak", 100, 30);
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let leak_class = (0..n_leak).map(move |i| InstanceSpec {
        name: format!("leak-{i:03}"),
        scenario: before.clone(),
        policy,
        seed: 5_000 + i as u64,
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
        class: ServiceClass::new("leak"),
    });
    let steady_class = (0..n_steady).map(move |i| {
        InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), policy, 9_000 + i as u64)
            .with_class("steady")
    });
    leak_class.chain(steady_class).collect()
}

fn class_configs(
    features: &FeatureSet,
    drift_enabled: bool,
) -> Result<Vec<(ServiceClass, ClassSpec)>, Box<dyn std::error::Error>> {
    // Per-class initial models, each trained for its own regime.
    let leak_training: Vec<Scenario> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let leak_model: Arc<dyn Regressor> =
        Arc::new(AgingPredictor::train(&leak_training, features.clone(), 42)?.model().clone());
    let steady_model: Arc<dyn Regressor> = Arc::new(
        AgingPredictor::train(&[leaky("steady-train", 100, 45)], features.clone(), 42)?
            .model()
            .clone(),
    );
    let drift = |threshold: f64| {
        if drift_enabled {
            DriftConfig {
                error_threshold_secs: threshold,
                min_observations: 40,
                cooldown_observations: 120,
                ..Default::default()
            }
        } else {
            DriftConfig::disabled()
        }
    };
    let adapt = |threshold: f64| {
        AdaptConfig::builder()
            .drift(drift(threshold))
            .buffer_capacity(2048)
            .min_buffer_to_retrain(120)
            .build()
    };
    Ok(vec![
        (
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), leak_model).config(adapt(600.0)).build(),
        ),
        (
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), steady_model)
                .config(adapt(3600.0))
                .build(),
        ),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs {
        instances: 24,
        shards: 4,
        hours: 6.0,
        json: None,
        metrics: None,
        trace: None,
        journal: None,
        replay: false,
    };
    let args = parse_args(
        defaults,
        "BENCH_hetero.json",
        "METRICS_hetero.json",
        "TRACE_hetero.json",
        "JOURNAL_hetero",
    )
    .inspect_err(|_| {
        eprintln!(
            "usage: hetero_fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
                 [--metrics [PATH]] [--trace [PATH]] [--journal [DIR]] [--replay]"
        );
    })?;
    let n_leak = (args.instances * 2 / 3).max(1);
    let n_steady = (args.instances - n_leak).max(1);
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    println!(
        "training per-class models … ({n_leak} shifting + {n_steady} steady deployments, \
         {:.0} h horizon)\n",
        args.hours
    );

    // Run 1: per-class frozen baseline (drift disabled — every class rides
    // out the shift on its generation-0 model).
    println!("── frozen per-class models ──");
    let frozen_router = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, false)?)
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let frozen = Fleet::new(specs(n_leak, n_steady, horizon), config)?
        .run_routed(&frozen_router, &features)?;
    frozen_router.shutdown();
    println!("{frozen}\n");

    // Run 2: same fleet and seeds, class-routed adaptation live.
    println!("── class-routed adaptation ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let recorder = args.trace.as_ref().map(|_| FlightRecorder::shared());
    let journal = match &args.journal {
        Some(dir) => Some(Arc::new(Journal::open(dir)?)),
        None => None,
    };
    let mut router_builder = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, true)?)
        .config(RouterConfig::builder().retrainer_threads(2).build());
    if let Some(registry) = &registry {
        router_builder = router_builder.telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        router_builder = router_builder.trace(Arc::clone(recorder));
    }
    if let Some(journal) = &journal {
        router_builder = router_builder.journal(Arc::clone(journal));
        if args.replay {
            router_builder = router_builder.replay();
        }
    }
    let router = router_builder.spawn();
    if args.replay {
        let stats = router.stats();
        let restored: u64 = stats.classes.iter().map(|c| c.stats.ingested_checkpoints).sum();
        println!("replayed journal: {restored} checkpoints restored before any live batch");
    }
    let mut routed_fleet = Fleet::new(specs(n_leak, n_steady, horizon), config)?;
    if let Some(registry) = &registry {
        routed_fleet = routed_fleet.with_telemetry(Arc::clone(registry));
    }
    if let Some(recorder) = &recorder {
        routed_fleet = routed_fleet.with_trace(Arc::clone(recorder));
    }
    if let Some(journal) = &journal {
        routed_fleet = routed_fleet.with_journal(Arc::clone(journal));
    }
    let mut routed = routed_fleet.run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    let stats = router.shutdown();
    // `run_routed` snapshots the stats mid-drain; replace them with the
    // settled post-quiesce numbers so console and JSON artifact agree
    // (and re-snapshot the telemetry for the same reason).
    routed.routing = Some(stats.clone());
    if let Some(registry) = &registry {
        routed.telemetry = Some(registry.snapshot());
    }
    println!("{routed}\n");

    println!("── frozen vs routed, per class ──");
    for class in ["leak", "steady"] {
        let frozen_err = frozen.class_mean_ttf_error_secs(class);
        let routed_err = routed.class_mean_ttf_error_secs(class);
        let s = stats.class(&ServiceClass::new(class)).expect("registered class");
        println!(
            "  {class:<8} TTF error {frozen_err:>7.0} s → {routed_err:>7.0} s  \
             ({:.1}× lower)   gen {}  retrains {}  drift events {}",
            frozen_err / routed_err.max(1.0),
            s.generation,
            s.retrains,
            s.drift_events,
        );
    }
    println!(
        "  bus: {} checkpoints ingested, {} dropped, {} unrouted",
        stats.ingested_checkpoints, stats.dropped_checkpoints, stats.unrouted_checkpoints
    );
    if let (Some(dir), Some(journal)) = (&args.journal, &journal) {
        journal.sync()?;
        assert_eq!(stats.journal_errors, 0, "the routed run must journal cleanly");
        let j = routed.journal.as_ref().expect("journal attached to the fleet");
        println!(
            "  journal: {} records ({} fsyncs, {} rotations) in {dir}",
            j.appended_records, j.fsyncs, j.segment_rotations
        );
    }

    // The ISSUE 6 acceptance gate: the snapshot must show the run was
    // actually instrumented, not just that a registry existed.
    if let Some(path) = &args.metrics {
        let telemetry = routed.telemetry.as_ref().expect("registry attached");
        let waits = telemetry.histogram_series("fleet_barrier_wait_seconds");
        assert!(
            !waits.is_empty() && waits.iter().all(|h| h.count > 0),
            "every shard records barrier waits"
        );
        let generations: u64 = stats.classes.iter().map(|c| c.stats.generation).sum();
        let refits: u64 = telemetry
            .histogram_series("adapt_refit_duration_seconds")
            .iter()
            .map(|h| h.count)
            .sum();
        let swaps: u64 =
            telemetry.histogram_series("adapt_swap_latency_seconds").iter().map(|h| h.count).sum();
        if generations > 0 {
            assert!(refits > 0, "published generations imply recorded refit durations");
            assert!(swaps > 0, "published generations imply an observed pin swap");
        }
        let shed = telemetry.counter_total("adapt_bus_shed_checkpoints_total");
        assert_eq!(
            shed, stats.dropped_checkpoints,
            "per-class shed counters must sum to the router's drop counter"
        );
        println!(
            "telemetry: {} barrier-wait series, {refits} refits timed, {swaps} swaps observed, \
             {shed} checkpoints shed",
            waits.len()
        );
        write_metrics(path, telemetry)?;
    }

    // The tracing acceptance gate: every generation a class published must
    // resolve a complete causal chain, and the Perfetto artifact must
    // survive the same format check CI applies.
    if let (Some(path), Some(recorder)) = (&args.trace, &recorder) {
        let trace = recorder.trace();
        let chains = assert_causal_chains(&trace);
        write_trace(path, recorder)?;
        check_chrome_format(&std::fs::read_to_string(path)?)
            .map_err(|e| format!("{path} failed the trace format check: {e}"))?;
        println!(
            "trace: {chains} publish chains resolved end to end, format check passed ({} events, \
             {} dropped)",
            trace.len(),
            recorder.dropped()
        );
    }

    if let Some(path) = &args.json {
        let bench = HeteroBench { frozen, routed };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}

/// Asserts that every [`EventKind::GenerationPublished`] in the trace
/// resolves a complete drift→trigger→refit→publish(→swap) chain through
/// [`Trace::causal_chain`]; returns the number of chains checked.
fn assert_causal_chains(trace: &Trace) -> usize {
    let mut chains = 0;
    for class in ["leak", "steady"] {
        for publish in trace.publishes(class) {
            let generation = publish.generation.expect("publishes carry a generation");
            let chain = trace.causal_chain(class, generation);
            let has = |pred: fn(&EventKind) -> bool| chain.iter().any(|e| pred(&e.kind));
            assert!(
                has(|k| matches!(
                    k,
                    EventKind::DriftObserved { .. } | EventKind::TriggerArmed { .. }
                )),
                "{class} gen {generation}: chain must root in a drift observation or an armed \
                 trigger: {chain:#?}"
            );
            assert!(
                has(|k| matches!(k, EventKind::TriggerFired { .. })),
                "{class} gen {generation}: chain must record the trigger firing: {chain:#?}"
            );
            assert!(
                has(|k| matches!(k, EventKind::RefitStarted { .. }))
                    && has(|k| matches!(k, EventKind::RefitFinished { ok: true })),
                "{class} gen {generation}: chain must span the refit: {chain:#?}"
            );
            // Swaps ride the epoch loop, so a generation superseded before
            // any shard pinned it (or published after the run) legitimately
            // has none — but when the trace holds a swap for this
            // generation, the chain must surface it.
            let swapped = trace.events.iter().any(|e| {
                matches!(e.kind, EventKind::SwapApplied)
                    && e.class.as_deref() == Some(class)
                    && e.generation == Some(generation)
            });
            assert!(
                !swapped || has(|k| matches!(k, EventKind::SwapApplied)),
                "{class} gen {generation}: the shard swap must parent on the publish: {chain:#?}"
            );
            chains += 1;
        }
    }
    chains
}

/// The CI trace-format check, inline: the artifact is valid Chrome
/// trace-event JSON, seqs are monotone in file order and every non-root
/// parent resolves to an already-seen seq.
fn check_chrome_format(text: &str) -> Result<(), String> {
    let root = serde::parse_value(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let entries = root
        .as_obj()
        .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
        .and_then(|(_, v)| match v {
            serde::Value::Arr(entries) => Some(entries),
            _ => None,
        })
        .ok_or("missing traceEvents array")?;
    let field = |entry: &serde::Value, name: &str| -> Option<serde::Value> {
        entry.as_obj()?.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    };
    let mut seen = std::collections::HashSet::new();
    let mut last_seq = None;
    for entry in entries {
        let Some(serde::Value::Str(ph)) = field(entry, "ph") else {
            return Err("entry without ph".into());
        };
        if ph == "M" {
            continue;
        }
        let args = field(entry, "args").ok_or("event without args")?;
        let Some(serde::Value::U64(seq)) = field(&args, "seq") else {
            return Err("event without args.seq".into());
        };
        if last_seq.is_some_and(|last| seq <= last) {
            return Err(format!("seq {seq} out of order"));
        }
        if let Some(serde::Value::U64(parent)) = field(&args, "parent") {
            if !seen.contains(&parent) {
                return Err(format!("seq {seq} parents on unseen {parent}"));
            }
        }
        seen.insert(seq);
        last_seq = Some(seq);
    }
    Ok(())
}
