//! Heterogeneous fleet: per-class adaptive model services under a shift
//! injected into one class only.
//!
//! Two service classes share one fleet: a "leak" class whose workload
//! shifts to an aggressive leak a quarter into the horizon, and a
//! "steady" class that never changes. A single global model would let the
//! shifted class drag the steady class's predictions around; the
//! [`AdaptiveRouter`] keeps one model service, drift monitor and sliding
//! buffer per class over a shared retrainer pool, so the shift retrains
//! the leak class alone — the steady class stays on generation 0 and its
//! outcomes are identical to a fleet that never contained the other class.
//!
//! ```text
//! cargo run --release --example hetero_fleet [-- --instances 24 \
//!     --shards 4 --hours 6 --json [PATH] --metrics [PATH]]
//! ```
//!
//! Two thirds of `--instances` form the shifting class, one third the
//! steady class. `--json` writes both reports (default path
//! `BENCH_hetero.json`); `--metrics` attaches one telemetry registry to
//! the routed run (fleet *and* router side), **asserts** the snapshot is
//! live — non-zero barrier-wait and refit-duration histograms, swap
//! latency once a generation was published, per-class shed counters
//! summing to the router's drop counter — and writes it (default path
//! `METRICS_hetero.json`).

use serde::Serialize;
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::obs::Registry;
use software_aging::testbed::Scenario;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{leaky, parse_args, write_metrics, FleetArgs};

/// Both runs of the comparison, as written by `--json`.
#[derive(Debug, Serialize)]
struct HeteroBench {
    frozen: FleetReport,
    routed: FleetReport,
}

fn specs(n_leak: usize, n_steady: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let steady = leaky("steady-leak", 100, 30);
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let leak_class = (0..n_leak).map(move |i| InstanceSpec {
        name: format!("leak-{i:03}"),
        scenario: before.clone(),
        policy,
        seed: 5_000 + i as u64,
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
        class: ServiceClass::new("leak"),
    });
    let steady_class = (0..n_steady).map(move |i| {
        InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), policy, 9_000 + i as u64)
            .with_class("steady")
    });
    leak_class.chain(steady_class).collect()
}

fn class_configs(
    features: &FeatureSet,
    drift_enabled: bool,
) -> Result<Vec<(ServiceClass, ClassSpec)>, Box<dyn std::error::Error>> {
    // Per-class initial models, each trained for its own regime.
    let leak_training: Vec<Scenario> =
        [75u64, 100, 125].into_iter().map(|ebs| leaky(format!("train-{ebs}eb"), ebs, 75)).collect();
    let leak_model: Arc<dyn Regressor> =
        Arc::new(AgingPredictor::train(&leak_training, features.clone(), 42)?.model().clone());
    let steady_model: Arc<dyn Regressor> = Arc::new(
        AgingPredictor::train(&[leaky("steady-train", 100, 45)], features.clone(), 42)?
            .model()
            .clone(),
    );
    let drift = |threshold: f64| {
        if drift_enabled {
            DriftConfig {
                error_threshold_secs: threshold,
                min_observations: 40,
                cooldown_observations: 120,
                ..Default::default()
            }
        } else {
            DriftConfig::disabled()
        }
    };
    let adapt = |threshold: f64| {
        AdaptConfig::builder()
            .drift(drift(threshold))
            .buffer_capacity(2048)
            .min_buffer_to_retrain(120)
            .build()
    };
    Ok(vec![
        (
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), leak_model).config(adapt(600.0)).build(),
        ),
        (
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), steady_model)
                .config(adapt(3600.0))
                .build(),
        ),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defaults = FleetArgs { instances: 24, shards: 4, hours: 6.0, json: None, metrics: None };
    let args =
        parse_args(defaults, "BENCH_hetero.json", "METRICS_hetero.json").inspect_err(|_| {
            eprintln!(
                "usage: hetero_fleet [--instances N] [--shards N] [--hours H] [--json [PATH]] \
                 [--metrics [PATH]]"
            );
        })?;
    let n_leak = (args.instances * 2 / 3).max(1);
    let n_steady = (args.instances - n_leak).max(1);
    let horizon = args.hours * 3600.0;
    let features = FeatureSet::exp42();
    let config = FleetConfig {
        shards: args.shards,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    println!(
        "training per-class models … ({n_leak} shifting + {n_steady} steady deployments, \
         {:.0} h horizon)\n",
        args.hours
    );

    // Run 1: per-class frozen baseline (drift disabled — every class rides
    // out the shift on its generation-0 model).
    println!("── frozen per-class models ──");
    let frozen_router = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, false)?)
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let frozen = Fleet::new(specs(n_leak, n_steady, horizon), config)?
        .run_routed(&frozen_router, &features)?;
    frozen_router.shutdown();
    println!("{frozen}\n");

    // Run 2: same fleet and seeds, class-routed adaptation live.
    println!("── class-routed adaptation ──");
    let registry = args.metrics.as_ref().map(|_| Registry::shared());
    let mut router_builder = AdaptiveRouter::builder(features.variables().to_vec())
        .classes(class_configs(&features, true)?)
        .config(RouterConfig::builder().retrainer_threads(2).build());
    if let Some(registry) = &registry {
        router_builder = router_builder.telemetry(Arc::clone(registry));
    }
    let router = router_builder.spawn();
    let mut routed_fleet = Fleet::new(specs(n_leak, n_steady, horizon), config)?;
    if let Some(registry) = &registry {
        routed_fleet = routed_fleet.with_telemetry(Arc::clone(registry));
    }
    let mut routed = routed_fleet.run_routed(&router, &features)?;
    router.quiesce(Duration::from_secs(30));
    let stats = router.shutdown();
    // `run_routed` snapshots the stats mid-drain; replace them with the
    // settled post-quiesce numbers so console and JSON artifact agree
    // (and re-snapshot the telemetry for the same reason).
    routed.routing = Some(stats.clone());
    if let Some(registry) = &registry {
        routed.telemetry = Some(registry.snapshot());
    }
    println!("{routed}\n");

    println!("── frozen vs routed, per class ──");
    for class in ["leak", "steady"] {
        let frozen_err = frozen.class_mean_ttf_error_secs(class);
        let routed_err = routed.class_mean_ttf_error_secs(class);
        let s = stats.class(&ServiceClass::new(class)).expect("registered class");
        println!(
            "  {class:<8} TTF error {frozen_err:>7.0} s → {routed_err:>7.0} s  \
             ({:.1}× lower)   gen {}  retrains {}  drift events {}",
            frozen_err / routed_err.max(1.0),
            s.generation,
            s.retrains,
            s.drift_events,
        );
    }
    println!(
        "  bus: {} checkpoints ingested, {} dropped, {} unrouted",
        stats.ingested_checkpoints, stats.dropped_checkpoints, stats.unrouted_checkpoints
    );

    // The ISSUE 6 acceptance gate: the snapshot must show the run was
    // actually instrumented, not just that a registry existed.
    if let Some(path) = &args.metrics {
        let telemetry = routed.telemetry.as_ref().expect("registry attached");
        let waits = telemetry.histogram_series("fleet_barrier_wait_seconds");
        assert!(
            !waits.is_empty() && waits.iter().all(|h| h.count > 0),
            "every shard records barrier waits"
        );
        let generations: u64 = stats.classes.iter().map(|c| c.stats.generation).sum();
        let refits: u64 = telemetry
            .histogram_series("adapt_refit_duration_seconds")
            .iter()
            .map(|h| h.count)
            .sum();
        let swaps: u64 =
            telemetry.histogram_series("adapt_swap_latency_seconds").iter().map(|h| h.count).sum();
        if generations > 0 {
            assert!(refits > 0, "published generations imply recorded refit durations");
            assert!(swaps > 0, "published generations imply an observed pin swap");
        }
        let shed = telemetry.counter_total("adapt_bus_shed_checkpoints_total");
        assert_eq!(
            shed, stats.dropped_checkpoints,
            "per-class shed counters must sum to the router's drop counter"
        );
        println!(
            "telemetry: {} barrier-wait series, {refits} refits timed, {swaps} swaps observed, \
             {shed} checkpoints shed",
            waits.len()
        );
        write_metrics(path, telemetry)?;
    }

    if let Some(path) = &args.json {
        let bench = HeteroBench { frozen, routed };
        std::fs::write(path, serde_json::to_string_pretty(&bench)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}
