//! Drift detection on monitored memory series (the related-work
//! segmentation approach of Cherkasova et al., DSN'08 — ref. [15] of the
//! paper): segment the Tomcat memory curve into linear pieces and decide
//! whether the server is stable, degrading (aging), or anomalous.
//!
//! ```text
//! cargo run --release --example drift_detection
//! ```

use software_aging::ml::segment::{diagnose, segment_series, SeriesDiagnosis};
use software_aging::testbed::{MemLeakSpec, PeriodicSpec, Scenario};

fn analyse(label: &str, series: &[f64]) {
    let segments = segment_series(series, 8.0);
    let diagnosis = diagnose(series, 8.0, 0.5);
    println!("{label}:");
    println!("  {} linear segments; diagnosis: {diagnosis:?}", segments.len());
    for s in segments.iter().take(5) {
        println!(
            "    [{:>4}..{:>4})  slope {:+.3} MB/checkpoint  (max residual {:.1} MB)",
            s.start, s.end, s.slope, s.max_abs_err
        );
    }
    if matches!(diagnosis, SeriesDiagnosis::Degrading { .. }) {
        println!("  -> software aging suspected: schedule proactive rejuvenation");
    }
    println!();
}

fn memory_series(trace: &software_aging::testbed::RunTrace) -> Vec<f64> {
    // Skip the JVM warm-up: a fresh server's resident set always creeps
    // during its first minutes.
    trace.samples.iter().filter(|s| s.time_secs > 1200.0).map(|s| s.tomcat_mem_mb).collect()
}

fn main() {
    let healthy =
        Scenario::builder("healthy").emulated_browsers(100).duration_minutes(120).build().run(1);
    analyse("healthy server (2 h, no injection)", &memory_series(&healthy));

    let aging = Scenario::builder("aging")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(30))
        .run_to_crash()
        .build()
        .run(2);
    analyse("aging server (N=30 leak, run to crash)", &memory_series(&aging));

    let waving = Scenario::builder("waving")
        .emulated_browsers(100)
        .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 3)
        .build()
        .run(3);
    analyse("periodic acquire/release (no net aging, OS view)", &memory_series(&waving));
}
