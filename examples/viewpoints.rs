//! The paper's two motivating examples (Section 2.1), as runnable demos:
//!
//! 1. a constant-rate leak still produces *non-linear* OS-level memory
//!    behaviour because the heap management system resizes the Old zone
//!    (Figure 1's staircase), defeating naive linear extrapolation;
//! 2. the same resource looks completely different from the OS and the JVM
//!    perspectives (Figure 2): Linux never reclaims freed RSS, so the OS
//!    view is the high-water mark while the JVM view waves.
//!
//! ```text
//! cargo run --release --example viewpoints
//! ```

use software_aging::testbed::{MemLeakSpec, PeriodicSpec, Scenario};

fn spark(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    values.iter().map(|v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize]).collect()
}

fn downsample(values: Vec<f64>, n: usize) -> Vec<f64> {
    let step = (values.len() / n).max(1);
    values.into_iter().step_by(step).take(n).collect()
}

fn main() {
    // --- Example 1: non-linear resource behaviour (Figure 1) ---
    let trace = Scenario::builder("fig1")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(30))
        .run_to_crash()
        .build()
        .run(1);
    let crash = trace.crash.expect("N=30 leak crashes");
    let os: Vec<f64> = trace.samples.iter().map(|s| s.tomcat_mem_mb).collect();
    let committed: Vec<f64> = trace.samples.iter().map(|s| s.old_max_mb).collect();
    let resizes: f64 = trace.samples.iter().map(|s| s.old_resizes).sum();
    println!("Example 1 — constant 1 MB leak (N=30), crash at {:.0}s:", crash.time_secs);
    println!("  OS view of Tomcat memory : {}", spark(&downsample(os, 72)));
    println!("  Old zone committed (MB)  : {}", spark(&downsample(committed, 72)));
    println!("  the Old zone was resized {resizes} times — each resize creates a flat zone");
    println!("  that defeats naive linear extrapolation (Section 2.1.1)\n");

    // --- Example 2: viewpoints on a resource (Figure 2) ---
    let trace = Scenario::builder("fig2")
        .emulated_browsers(100)
        .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 5)
        .build()
        .run(2);
    let os: Vec<f64> = trace.samples.iter().map(|s| s.tomcat_mem_mb).collect();
    let jvm: Vec<f64> = trace.samples.iter().map(|s| s.heap_used_mb).collect();
    println!("Example 2 — periodic acquire/release, 5 hours, no net aging:");
    println!("  OS perspective (RSS)     : {}", spark(&downsample(os, 72)));
    println!("  JVM perspective (used)   : {}", spark(&downsample(jvm, 72)));
    println!("  the application releases memory every cycle, but the OS never sees it:");
    println!("  monitoring perspective is crucial (Section 2.1.2)");
}
