//! # software-aging
//!
//! Facade crate for the reproduction of *"Adaptive on-line software aging
//! prediction based on Machine Learning"* (Alonso, Torres, Berral, Gavaldà —
//! DSN 2010).
//!
//! The workspace is organised bottom-up; this crate re-exports every layer
//! so applications can depend on a single crate:
//!
//! - [`dataset`] — tabular data, statistics, sliding windows, CSV/ARFF I/O,
//! - [`ml`] — M5P model trees, linear regression, regression trees, ARMA,
//!   the naive Eq. (1) predictor, evaluation metrics, feature selection,
//!   prediction boards and on-line wrappers,
//! - [`testbed`] — the simulated three-tier TPC-W deployment (JVM heap with
//!   GC and resizing, threads, OS memory view, Tomcat, MySQL, emulated
//!   browsers, fault injectors),
//! - [`monitor`] — 15-second checkpoints, the paper's Table-2 variable
//!   catalogue, per-experiment feature sets and TTF labelling,
//! - [`core`] — the end-to-end prediction framework: training on
//!   run-to-crash executions, on-line adaptive prediction, root-cause
//!   analysis and rejuvenation policies,
//! - [`fleet`] — the concurrent fleet engine: hundreds of independently
//!   seeded deployments sharded across a worker-thread pool, driven in
//!   lock-step 15-second epochs, batch-predicted through one shared model
//!   ([`ml::Regressor::predict_matrix`] over flat reusable feature
//!   matrices) and proactively rejuvenated, with fleet-wide availability /
//!   crashes-avoided / TTF-error / throughput reporting,
//! - [`adapt`] — the drift-triggered online retraining service: bounded
//!   checkpoint ingestion (drop-oldest ring with per-source fairness),
//!   prediction-error drift detection (EWMA ⊕ segmentation trend),
//!   sliding-buffer retraining on any learner, hot model-generation swap
//!   into the running fleet, and class-routed adaptation for
//!   heterogeneous fleets (one model service per `ServiceClass` over a
//!   shared retrainer pool),
//! - [`tune`] — self-optimising policy search: ALNS-style destroy/repair
//!   search over the rejuvenation policy space (learner choice, drift
//!   debounce, threshold-policy quantiles, buffer/refit cadence), scored
//!   by counterfactual journal replay and promoted into the live router
//!   through a margin-guarded gate,
//! - [`obs`] — the zero-overhead telemetry layer: a lock-free metrics
//!   registry (atomic counters/gauges, log2-bucket histograms, labelled
//!   families keyed by class or shard), RAII phase timers, and Prometheus /
//!   JSON exporters threaded through the fleet engine, the adaptation
//!   service and class discovery.
//!
//! # Quickstart
//!
//! ```no_run
//! use software_aging::core::AgingPredictor;
//! use software_aging::monitor::FeatureSet;
//! use software_aging::testbed::{Scenario, MemLeakSpec};
//!
//! // Train on four run-to-crash executions at different workloads …
//! let training: Vec<Scenario> = [25, 50, 100, 200]
//!     .into_iter()
//!     .map(|ebs| {
//!         Scenario::builder(format!("train-{ebs}eb"))
//!             .emulated_browsers(ebs)
//!             .memory_leak(MemLeakSpec::new(30))
//!             .run_to_crash()
//!             .build()
//!     })
//!     .collect();
//! let predictor = AgingPredictor::train(&training, FeatureSet::exp41(), 42).unwrap();
//!
//! // … then predict time-to-failure for a fresh execution.
//! let test = Scenario::builder("test-75eb")
//!     .emulated_browsers(75)
//!     .memory_leak(MemLeakSpec::new(30))
//!     .run_to_crash()
//!     .build();
//! let report = predictor.evaluate_scenario(&test, 7).unwrap();
//! println!("{}", report.evaluation.summary());
//! ```

pub use aging_adapt as adapt;
pub use aging_core as core;
pub use aging_dataset as dataset;
pub use aging_fleet as fleet;
pub use aging_journal as journal;
pub use aging_ml as ml;
pub use aging_monitor as monitor;
pub use aging_obs as obs;
pub use aging_testbed as testbed;
pub use aging_tune as tune;
